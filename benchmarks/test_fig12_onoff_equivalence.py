"""Figure 12 bench: TFRC/TCP equivalence with ON/OFF background traffic.

Paper's shape: at low loss the equivalence ratio is ~0.7-0.8 over a broad
range of timescales; at higher loss it degrades at short timescales but
stays meaningful at long ones.
"""

import math

from repro.experiments import fig11_onoff as fig11


def test_fig12_onoff_equivalence(once, benchmark):
    light = once(benchmark, fig11.run_one, 60, duration=150.0)
    heavy = fig11.run_one(140, duration=150.0)
    print("\nFigure 12 reproduction (TFRC/TCP equivalence by timescale):")
    for result in (light, heavy):
        pairs = ", ".join(
            f"{tau:g}s={ratio:.2f}"
            for tau, ratio in sorted(result.equivalence_by_tau.items())
            if not math.isnan(ratio)
        )
        print(f"  {result.sources:4d} sources (loss {result.loss_rate:.2f}): {pairs}")
    # Light load: decent equivalence at moderate-to-long timescales.
    long_taus = [t for t in light.equivalence_by_tau if t >= 5.0]
    assert long_taus
    light_long = max(light.equivalence_by_tau[t] for t in long_taus)
    assert light_long > 0.45
    # Equivalence improves with timescale under heavy loss.
    heavy_vals = [v for _, v in sorted(heavy.equivalence_by_tau.items())
                  if not math.isnan(v)]
    assert heavy_vals and max(heavy_vals[-2:]) >= max(heavy_vals[:2])
    # Both monitored flows moved data.
    assert light.tcp_throughput_bps > 0 and light.tfrc_throughput_bps > 0
