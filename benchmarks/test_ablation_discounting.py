"""Ablation: history discounting on/off (sections 3.3 and A.1).

Discounting exists to speed the response to a *sustained decrease* in
congestion without disturbing steady-state behaviour.  This bench runs the
Figure 19 scenario both ways and checks:

* identical behaviour before and shortly after congestion ends,
* faster recovery with discounting once the lull is long,
* the respective increase-rate bounds (~0.12 vs up to ~0.3 pkts/RTT/RTT).
"""

from repro.experiments import fig19_increase as fig19


def run_both():
    with_discounting = fig19.run(duration=13.0, history_discounting=True)
    without = fig19.run(duration=13.0, history_discounting=False)
    return with_discounting, without


def test_history_discounting_ablation(once, benchmark):
    with_disc, without = once(benchmark, run_both)
    # Identical during congestion (discounting never engages there).
    pre_with = [
        r for t, r in zip(with_disc.times, with_disc.rate_pkts_per_rtt) if 8 <= t < 10
    ]
    pre_without = [
        r for t, r in zip(without.times, without.rate_pkts_per_rtt) if 8 <= t < 10
    ]
    assert abs(sum(pre_with) / len(pre_with) - sum(pre_without) / len(pre_without)) < 0.5

    # After a long lull, discounting has recovered visibly more.
    final_with = with_disc.rate_pkts_per_rtt[-1]
    final_without = without.rate_pkts_per_rtt[-1]
    assert final_with > final_without

    late_slope_with = with_disc.mean_slope(12.0, with_disc.times[-1])
    late_slope_without = without.mean_slope(12.0, without.times[-1])
    print("\nHistory discounting ablation:")
    print(f"  final rate   : {final_with:.1f} vs {final_without:.1f} pkts/RTT")
    print(f"  late slope   : {late_slope_with:.3f} vs {late_slope_without:.3f} pkts/RTT^2")
    # Bounds: without discounting ~0.12; with, up to ~0.3.
    assert late_slope_without <= 0.20
    assert late_slope_with <= 0.40
    assert late_slope_with > late_slope_without
