"""Micro-benchmark: per-packet vs batched link scheduling.

Drives one saturated link (tiny service time, deep backlog, trivial
receiver) so that scheduler bookkeeping dominates, and compares the legacy
per-packet event path (one heap ``Event`` per transmission completion plus
one per delivery) against the batched fast path (a self-rescheduling
tuple-entry wakeup loop).  The figure of merit is *scheduled events per
wall-clock second*: each forwarded packet corresponds to two scheduler
wakeups on either path, so the ratio of packet rates is the ratio of event
rates.

Also exercises ``Simulator.schedule_batch`` against one-at-a-time
``schedule`` for bulk seeding, the other half of the engine fast path.
"""

from __future__ import annotations

import os
import time

import pytest

#: Wall-clock ratio assertions are meaningful on a quiet local machine but
#: flaky gates on shared CI runners (GitHub sets ``CI=true``): there the
#: timing tests skip and only the behavioral identity checks run.
skip_timing_on_ci = pytest.mark.skipif(
    os.environ.get("CI", "").lower() in ("1", "true"),
    reason="wall-clock performance ratios are unreliable on shared CI runners",
)

from repro.net.link import Link
from repro.net.packet import Packet, PacketType
from repro.net.queues import DropTailQueue
from repro.sim.engine import Simulator

#: Events per forwarded packet on both link paths (finish + delivery).
EVENTS_PER_PACKET = 2


def _drive_link(fastpath: bool, n_packets: int) -> float:
    """Forward ``n_packets`` through a saturated link; returns seconds."""
    sim = Simulator()
    link = Link(
        sim, 8e9, 0.01, DropTailQueue(n_packets + 1), fastpath=fastpath
    )
    received = [0]

    def receiver(packet: Packet) -> None:
        received[0] += 1

    link.connect(receiver)
    sent = [0]
    batch = 200
    refill_interval = batch * 1000 * 8 / 8e9

    def feed() -> None:
        for _ in range(batch):
            if sent[0] >= n_packets:
                return
            link.send(
                Packet(
                    flow_id="bench", seq=sent[0], size=1000,
                    ptype=PacketType.DATA,
                )
            )
            sent[0] += 1
        sim.schedule_fast(sim.now + refill_interval, feed)

    sim.schedule(0.0, feed)
    started = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - started
    assert received[0] == n_packets
    return elapsed


def _events_per_second(fastpath: bool, n_packets: int, repeats: int) -> float:
    best = min(_drive_link(fastpath, n_packets) for _ in range(repeats))
    return n_packets * EVENTS_PER_PACKET / best


class TestLinkFastpath:
    @skip_timing_on_ci
    def test_batched_link_path_is_faster(self, capsys):
        """Acceptance: the batched link hot path sustains >= 1.5x the
        events/sec of per-packet scheduling."""
        n_packets = 60_000
        repeats = 4
        legacy = _events_per_second(False, n_packets, repeats)
        batched = _events_per_second(True, n_packets, repeats)
        ratio = batched / legacy
        with capsys.disabled():
            print(
                f"\n[engine-fastpath] legacy {legacy:,.0f} ev/s, "
                f"batched {batched:,.0f} ev/s, ratio {ratio:.2f}x"
            )
        assert ratio >= 1.5, (
            f"batched link path only {ratio:.2f}x the per-packet path "
            f"({batched:,.0f} vs {legacy:,.0f} events/s)"
        )

    def test_paths_forward_identically(self):
        """The fast path must be a pure scheduling optimization: identical
        forwarding counts and byte totals at identical times."""
        counts = {}
        for fastpath in (False, True):
            sim = Simulator()
            link = Link(sim, 1e6, 0.05, DropTailQueue(10), fastpath=fastpath)
            deliveries = []
            link.connect(lambda p: deliveries.append((sim.now, p.seq)))
            for i in range(30):
                sim.schedule(
                    i * 0.001,
                    lambda i=i: link.send(
                        Packet(
                            flow_id="x", seq=i, size=500,
                            ptype=PacketType.DATA,
                        )
                    ),
                )
            sim.run()
            counts[fastpath] = (
                link.packets_forwarded,
                link.bytes_forwarded,
                link.queue.dropped,
                round(link.utilization_seconds, 12),
                deliveries,
            )
        assert counts[False] == counts[True]


class TestScheduleBatch:
    @skip_timing_on_ci
    def test_bulk_seeding_not_slower(self):
        """schedule_batch bulk-heapifies; it must beat or match a loop of
        schedule() calls for large seeding bursts."""
        n = 50_000

        def one_by_one() -> float:
            sim = Simulator()
            started = time.perf_counter()
            for i in range(n):
                sim.schedule(i * 1e-6, _noop)
            elapsed = time.perf_counter() - started
            sim.run()
            return elapsed

        def batched() -> float:
            sim = Simulator()
            started = time.perf_counter()
            sim.schedule_batch((i * 1e-6, _noop, ()) for i in range(n))
            elapsed = time.perf_counter() - started
            sim.run()
            return elapsed

        loop_time = min(one_by_one() for _ in range(3))
        batch_time = min(batched() for _ in range(3))
        # Typically ~2x faster; the generous margin keeps this from
        # flaking on noisy shared CI runners.
        assert batch_time <= loop_time * 1.25

    def test_batch_preserves_semantics(self):
        sim = Simulator()
        seen = []
        sim.schedule_batch(
            [(0.2, seen.append, ("b",)), (0.1, seen.append, ("a",))]
        )
        count = sim.schedule_batch([])
        assert count == 0
        sim.run()
        assert seen == ["a", "b"]


def _noop() -> None:
    return None
