"""Ablation: Average Loss Interval vs the rejected estimators (section 3.3).

The paper rejects the EWMA Loss Interval and Dynamic History Window methods
with specific criticisms; this bench reproduces them on a controlled event
stream:

* **EWMA** with a heavy weight over-reacts to a single interval; with a
  light weight it under-reacts to a genuine change.
* **Dynamic History Window** fluctuates under perfectly periodic loss
  (events entering/leaving the window add noise).
* **ALI** is stable under periodic loss and responds within a few intervals
  to a genuine change.
"""

import numpy as np

from repro.core.loss_intervals import (
    AverageLossIntervals,
    DynamicHistoryWindow,
    EwmaLossIntervals,
)


def drive_periodic(estimator, interval, events):
    """Feed `events` loss events with `interval` packets between them,
    sampling the estimate once per event; returns the estimates."""
    estimates = []
    for _ in range(events):
        for _ in range(interval - 1):
            estimator.on_packet()
        estimator.on_loss_event()
        estimates.append(estimator.loss_event_rate())
    return estimates


def steady_noise(estimator, interval=100, warmup=12, events=30):
    drive_periodic(estimator, interval, warmup)
    estimates = []
    for _ in range(events):
        for _ in range(interval - 1):
            estimator.on_packet()
            estimates.append(estimator.loss_event_rate())
        estimator.on_loss_event()
    spread = max(estimates) - min(estimates)
    return spread / np.mean(estimates)


def run_comparison():
    """Returns per-estimator (steady-state noise, change-response lag)."""
    results = {}
    makers = {
        "ali": lambda: AverageLossIntervals(),
        "ewma_heavy": lambda: EwmaLossIntervals(weight=0.5),
        "ewma_light": lambda: EwmaLossIntervals(weight=0.05),
        "dhw": lambda: DynamicHistoryWindow(window_packets=450),
    }
    for name, make in makers.items():
        noise = steady_noise(make())
        # Change response: 1% -> 10%; intervals until estimate within 25%
        # of the new rate.
        estimator = make()
        drive_periodic(estimator, 100, 12)
        lag = None
        estimates = drive_periodic(estimator, 10, 40)
        for index, estimate in enumerate(estimates):
            if abs(estimate - 0.1) / 0.1 < 0.25:
                lag = index + 1
                break
        results[name] = (noise, lag)
    return results


def test_estimator_ablation(once, benchmark):
    results = once(benchmark, run_comparison)
    print("\nEstimator ablation (steady noise, intervals to track 1%->10%):")
    for name, (noise, lag) in results.items():
        print(f"  {name:11s} noise {noise:.4f}  lag {lag}")
    ali_noise, ali_lag = results["ali"]
    # ALI is essentially noise-free under stable periodic loss.
    assert ali_noise < 0.05
    # And it tracks a genuine 10x change within ~n intervals.
    assert ali_lag is not None and ali_lag <= 10
    # DHW shows the window-boundary noise the paper criticizes.
    assert results["dhw"][0] > ali_noise
    # Light EWMA is slower to respond than ALI.
    ewma_light_lag = results["ewma_light"][1]
    assert ewma_light_lag is None or ewma_light_lag >= ali_lag
