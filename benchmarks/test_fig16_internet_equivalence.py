"""Figure 16 bench: TCP equivalence with TFRC over the five named paths.

Paper's observations: equivalence improves with timescale on every path;
the Linux sender gives good equivalence while the Solaris sender (broken
aggressive RTO) does more poorly -- a TCP defect, not a TFRC one.
"""

from repro.experiments import internet


def test_fig16_internet_equivalence(once, benchmark):
    results = once(benchmark, internet.run_all, duration=90.0)
    print("\nFigure 16 reproduction (equivalence by path):")
    for name, result in results.items():
        taus = sorted(result.equivalence_by_tau)
        series = " ".join(
            f"{tau:g}s={result.equivalence_by_tau[tau]:.2f}" for tau in taus
        )
        print(f"  {name:14s} {series}")
    for name, result in results.items():
        taus = sorted(result.equivalence_by_tau)
        # Equivalence at the longest timescale is meaningful on every path.
        assert result.equivalence_by_tau[taus[-1]] > 0.25, name
        # And no path shows TFRC wildly out of range at long timescales.
        assert result.equivalence_by_tau[taus[-1]] <= 1.0
    # The broken-RTO "Solaris" sender must not beat the healthy "Linux" one.
    linux = results["umass_linux"]
    solaris = results["umass_solaris"]
    tau = sorted(linux.equivalence_by_tau)[-1]
    assert solaris.equivalence_by_tau[tau] <= linux.equivalence_by_tau[tau] + 0.1
