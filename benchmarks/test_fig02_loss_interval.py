"""Figure 2 bench: ALI estimator under idealized periodic loss.

Regenerates the three panels' series (current/estimated interval, loss event
rate, transmission rate) and checks the paper's claims: stable estimate
under constant loss, fast reduction at the 10% step, smooth recovery.
"""

import numpy as np

from repro.experiments import fig02_loss_interval as fig02


def test_fig02_loss_interval(once, benchmark):
    result = once(benchmark, fig02.run, duration=16.0)

    summary = fig02.summarize(result)
    # Paper: constant 1% loss -> completely stable interval estimate (~100).
    assert 60 < summary["stable_interval_mean"] < 160
    assert summary["stable_interval_spread"] < 0.35 * summary["stable_interval_mean"]
    # Paper: p tracks the 10% phase.
    assert 0.04 < summary["p_during_10pct"] < 0.2
    # Paper: the transmission rate is rapidly reduced when loss jumps.
    assert summary["rate_drop_factor"] > 2.0

    # Recovery after t=9 is smooth: no step increases.
    rates = [
        r for t, r in zip(result.times, result.tx_rate_bytes) if 10.0 <= t <= 16.0
    ]
    jumps = [(b - a) / a for a, b in zip(rates, rates[1:]) if a > 0]
    assert max(jumps) < 0.25

    print("\nFigure 2 reproduction:")
    print(f"  stable estimated interval : {summary['stable_interval_mean']:.1f} pkts (paper: ~100)")
    print(f"  p during 10% phase        : {summary['p_during_10pct']:.3f} (paper: ~0.1)")
    print(f"  rate drop factor at step  : {summary['rate_drop_factor']:.1f}x")
