"""Extension bench: streaming QoE -- the section 1 motivation, quantified.

Runs the scenario of ``examples/video_streaming_qoe.py`` (one TFRC and one
TCP stream sharing a congested bottleneck with bursty cross traffic),
pushes both delivery traces through a playout buffer and a quality-ladder
adapter, and asserts the user-facing shape of the paper's claim:

* the TFRC stream's delivery is smoother (lower CoV),
* its player stalls no more than the TCP stream's, and
* its quality adapter switches less often.
"""

import numpy as np

from repro.analysis.cov import coefficient_of_variation
from repro.analysis.timeseries import arrivals_to_rate_series
from repro.apps import QualityAdapter, simulate_playout

DURATION = 150.0
WARMUP = 20.0
TAU = 0.5


def run_qoe_scenario():
    from examples.video_streaming_qoe import run_scenario

    monitor = run_scenario(seed=7)
    out = {}
    for name in ("tfrc", "tcp"):
        arrivals = [
            (t, b) for t, b in monitor.arrivals.get(name, []) if t >= WARMUP
        ]
        rates = arrivals_to_rate_series(arrivals, WARMUP, DURATION, TAU)
        rates_bps = [8 * r for r in rates]
        mean_bps = float(np.mean(rates_bps))
        playout = simulate_playout(
            arrivals, media_rate_bps=mean_bps,
            prebuffer_seconds=2.0, rebuffer_seconds=1.0, end_time=DURATION,
        )
        adaptation = QualityAdapter(up_stability=5.0).replay(rates_bps, tau=TAU)
        out[name] = {
            "mean_bps": mean_bps,
            "cov": coefficient_of_variation(rates),
            "stalls": playout.rebuffer_events,
            "stall_time": playout.stall_time,
            "switches_per_min": adaptation.switches_per_minute,
            "encoded_bps": adaptation.mean_bitrate_bps(),
        }
    return out


def test_extension_streaming_qoe(once, benchmark):
    results = once(benchmark, run_qoe_scenario)
    print("\nStreaming-QoE extension (per-stream, player at its own mean "
          "rate):")
    for name, r in results.items():
        print(f"  {name:4s}: mean {r['mean_bps'] / 1e6:.2f} Mb/s, "
              f"CoV {r['cov']:.2f}, stalls {r['stalls']} "
              f"({r['stall_time']:.1f} s), "
              f"{r['switches_per_min']:.1f} switches/min, "
              f"encoded {r['encoded_bps'] / 1e3:.0f} kb/s")
    tfrc, tcp = results["tfrc"], results["tcp"]
    # Both streams made real progress.
    assert tfrc["mean_bps"] > 2e5 and tcp["mean_bps"] > 2e5
    # Smoothness: the figure 8/10 claim.
    assert tfrc["cov"] < tcp["cov"]
    # Viewer impact: no more stalls, fewer quality switches.
    assert tfrc["stalls"] <= tcp["stalls"]
    assert tfrc["switches_per_min"] < tcp["switches_per_min"]