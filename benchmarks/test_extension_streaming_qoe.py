"""Extension bench: streaming QoE -- the section 1 motivation, quantified.

Runs the scenario of ``examples/video_streaming_qoe.py`` (one TFRC and one
TCP stream sharing a congested bottleneck with bursty cross traffic),
pushes both delivery traces through a playout buffer and a quality-ladder
adapter, and asserts the user-facing shape of the paper's claim:

* the TFRC stream's delivery is smoother (lower CoV),
* its player stalls no more than the TCP stream's, and
* its quality adapter switches less often.

The stall comparison aggregates over several seeds: a 150 s run produces
only a handful of rebuffer events, so a single seed's stall count is
drop-pattern roulette that any legitimate queue-level change (e.g. the
PR-4 ns-2 alignment of RED's uniformization counter) can reshuffle.  The
per-seed claims that are statistically stable (CoV, switch rate) are still
asserted for every seed.
"""

import numpy as np

from repro.analysis.cov import coefficient_of_variation
from repro.analysis.timeseries import arrivals_to_rate_series
from repro.apps import QualityAdapter, simulate_playout

DURATION = 150.0
WARMUP = 20.0
TAU = 0.5
SEEDS = range(5)


def analyze_monitor(monitor):
    out = {}
    for name in ("tfrc", "tcp"):
        arrivals = [
            (t, b) for t, b in monitor.arrivals.get(name, []) if t >= WARMUP
        ]
        rates = arrivals_to_rate_series(arrivals, WARMUP, DURATION, TAU)
        rates_bps = [8 * r for r in rates]
        mean_bps = float(np.mean(rates_bps))
        playout = simulate_playout(
            arrivals, media_rate_bps=mean_bps,
            prebuffer_seconds=2.0, rebuffer_seconds=1.0, end_time=DURATION,
        )
        adaptation = QualityAdapter(up_stability=5.0).replay(rates_bps, tau=TAU)
        out[name] = {
            "mean_bps": mean_bps,
            "cov": coefficient_of_variation(rates),
            "stalls": playout.rebuffer_events,
            "stall_time": playout.stall_time,
            "switches_per_min": adaptation.switches_per_minute,
            "encoded_bps": adaptation.mean_bitrate_bps(),
        }
    return out


def run_qoe_scenario():
    from examples.video_streaming_qoe import run_scenario

    return [analyze_monitor(run_scenario(seed=seed)) for seed in SEEDS]


def test_extension_streaming_qoe(once, benchmark):
    per_seed = once(benchmark, run_qoe_scenario)
    print("\nStreaming-QoE extension (per-stream, player at its own mean "
          "rate):")
    totals = {name: {"stalls": 0, "stall_time": 0.0} for name in ("tfrc", "tcp")}
    for seed, results in zip(SEEDS, per_seed):
        for name, r in results.items():
            print(f"  seed {seed} {name:4s}: mean {r['mean_bps'] / 1e6:.2f} "
                  f"Mb/s, CoV {r['cov']:.2f}, stalls {r['stalls']} "
                  f"({r['stall_time']:.1f} s), "
                  f"{r['switches_per_min']:.1f} switches/min, "
                  f"encoded {r['encoded_bps'] / 1e3:.0f} kb/s")
            totals[name]["stalls"] += r["stalls"]
            totals[name]["stall_time"] += r["stall_time"]
        tfrc, tcp = results["tfrc"], results["tcp"]
        # Per-seed: both streams made real progress, TFRC is smoother and
        # flaps between quality rungs less (the figure 8/10 claim).
        assert tfrc["mean_bps"] > 2e5 and tcp["mean_bps"] > 2e5
        assert tfrc["cov"] < tcp["cov"]
        assert tfrc["switches_per_min"] < tcp["switches_per_min"]
    # Aggregate viewer impact: no more rebuffering than TCP overall.
    assert totals["tfrc"]["stalls"] <= totals["tcp"]["stalls"]
    assert totals["tfrc"]["stall_time"] <= totals["tcp"]["stall_time"]
