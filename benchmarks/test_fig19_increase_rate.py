"""Figure 19 / Appendix A.1 bench: the bounded increase rate of TFRC.

Regenerates the allowed-rate trace around the end of congestion and checks
the analytic bounds: ~0.12-0.14 packets/RTT/RTT normally, up to ~0.3 with
history discounting, and a delayed start of the increase.
"""

from repro.experiments import fig19_increase as fig19


def test_fig19_increase_rate(once, benchmark):
    result = once(benchmark, fig19.run, duration=13.0)
    start = result.increase_start_time()
    normal_slope = result.mean_slope(start, start + 0.7)
    late_slope = result.mean_slope(result.loss_stop_time + 2.0, result.times[-1])
    bounds = fig19.analytic_bounds()
    print("\nFigure 19 reproduction:")
    print(f"  increase starts at t = {start:.2f} (loss stops at 10.0; paper: ~10.75)")
    print(f"  early increase rate : {normal_slope:.3f} pkts/RTT (paper ~0.12)")
    print(f"  discounted rate     : {late_slope:.3f} pkts/RTT (paper <= ~0.29)")
    print(f"  analytic bounds     : {bounds['delta_normal_simple']:.3f} / "
          f"{bounds['delta_discounted_simple']:.3f}")
    # The rate does not increase immediately: the current interval must
    # first exceed the average (paper: ~0.75 s for p=0.01).
    assert result.loss_stop_time + 0.2 <= start <= result.loss_stop_time + 1.5
    # Early increase near the no-discounting bound.
    assert 0.04 <= normal_slope <= 0.20
    # Discounted increase bounded by ~0.28-0.31 plus sampling slack.
    assert late_slope <= 0.40
    # And discounting accelerates relative to the early phase.
    assert late_slope > normal_slope
