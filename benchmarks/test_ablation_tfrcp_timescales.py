"""Section 5's TFRCP comparison, run with the section 4.1.1 metrics.

The paper: "We have compared the performance TFRC against the TFRCP using
simulations.  With the metrics described in Section 3, we find TFRC to be
better over a wide range of timescales."

This bench runs the standard mixed dumbbell twice -- n TCP + n TFRC, then
n TCP + n TFRCP -- and compares, per timescale, the CoV of the monitored
rate-based flow's delivery.  TFRCP updates its rate only at fixed 5 s
boundaries, so between updates it is rigid while the queue state drifts;
at its update boundary it jumps.  TFRC's per-RTT feedback gives a smoother
*delivered* rate at sub-update timescales and comparable fairness.
"""

import numpy as np

from repro.analysis.cov import coefficient_of_variation
from repro.analysis.equivalence import equivalence_ratio
from repro.analysis.timeseries import arrivals_to_rate_series
from repro.baselines.tfrcp import TfrcpFlow
from repro.core import TfrcFlow
from repro.net import Dumbbell, DumbbellConfig
from repro.net.monitor import FlowMonitor
from repro.sim import Simulator
from repro.sim.rng import RngRegistry
from repro.tcp.flow import TcpFlow

TAUS = (0.5, 1.0, 2.0, 5.0)
N_EACH = 4
DURATION = 90.0
WARMUP = 30.0


def run_mixed(rate_flow_cls, seed=3):
    registry = RngRegistry(seed)
    rng = registry.stream("topology")
    sim = Simulator()
    config = DumbbellConfig(bandwidth_bps=8e6, queue_type="red",
                            buffer_packets=60, red_min_thresh=6,
                            red_max_thresh=30)
    dumbbell = Dumbbell(sim, config, queue_rng=registry.stream("red"))
    monitor = FlowMonitor()
    for i in range(N_EACH):
        fwd, rev = dumbbell.attach_flow(f"rb-{i}", rng.uniform(0.08, 0.12))
        rate_flow_cls(sim, f"rb-{i}", fwd, rev,
                      on_data=monitor.on_packet).start(at=rng.uniform(0, 5))
    for i in range(N_EACH):
        fwd, rev = dumbbell.attach_flow(f"tcp-{i}", rng.uniform(0.08, 0.12))
        TcpFlow(sim, f"tcp-{i}", fwd, rev, variant="sack",
                on_data=monitor.on_packet).start(at=rng.uniform(0, 5))
    sim.run(until=DURATION)

    out = {"cov": {}, "equivalence": {}}
    for tau in TAUS:
        covs, ratios = [], []
        for i in range(N_EACH):
            series_rb = arrivals_to_rate_series(
                monitor.arrivals.get(f"rb-{i}", []), WARMUP, DURATION, tau
            )
            series_tcp = arrivals_to_rate_series(
                monitor.arrivals.get(f"tcp-{i}", []), WARMUP, DURATION, tau
            )
            covs.append(coefficient_of_variation(series_rb))
            ratios.append(equivalence_ratio(series_rb, series_tcp))
        out["cov"][tau] = float(np.nanmean(covs))
        out["equivalence"][tau] = float(np.nanmean(ratios))
    return out


def run_comparison():
    return {
        "tfrc": run_mixed(TfrcFlow),
        "tfrcp": run_mixed(TfrcpFlow),
    }


def test_ablation_tfrcp_timescales(once, benchmark):
    results = once(benchmark, run_comparison)
    print("\nTFRC vs TFRCP with the section 4.1.1 metrics "
          f"({N_EACH}+{N_EACH} flows, 8 Mb/s RED):")
    print("  tau     CoV(tfrc)  CoV(tfrcp)  eq(tfrc/tcp)  eq(tfrcp/tcp)")
    for tau in TAUS:
        print(f"  {tau:4.1f}s  {results['tfrc']['cov'][tau]:9.2f}  "
              f"{results['tfrcp']['cov'][tau]:10.2f}  "
              f"{results['tfrc']['equivalence'][tau]:12.2f}  "
              f"{results['tfrcp']['equivalence'][tau]:13.2f}")

    tfrc, tfrcp = results["tfrc"], results["tfrcp"]
    # Both protocols share meaningfully with TCP at the longest timescale.
    assert tfrc["equivalence"][TAUS[-1]] > 0.3
    assert tfrcp["equivalence"][TAUS[-1]] > 0.15
    # The paper's conclusion: TFRC better across a range of timescales --
    # smoother delivery at the majority of them.
    smoother = sum(1 for tau in TAUS if tfrc["cov"][tau] < tfrcp["cov"][tau])
    assert smoother >= len(TAUS) - 1
    # And at least as equivalent to TCP at sub-update timescales.
    assert tfrc["equivalence"][0.5] >= tfrcp["equivalence"][0.5] - 0.05