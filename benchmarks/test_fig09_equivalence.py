"""Figure 9 bench: equivalence ratio vs measurement timescale.

Reduced version of the paper's 14-run steady-state scenario.  Asserts the
paper's band: TFRC/TCP equivalence between ~0.5 and 1.0 over the swept
timescales, with TFRC/TFRC pairs at least as equivalent as TCP/TCP pairs on
short timescales.
"""

from repro.experiments import fig09_equivalence as fig09


def test_fig09_equivalence(once, benchmark):
    result = once(
        benchmark, fig09.run,
        runs=2, duration=60.0, measure_seconds=40.0, n_each=16,
    )
    print("\nFigure 9 reproduction (equivalence ratio by timescale):")
    print("  tau    TFRC/TFRC  TCP/TCP  TFRC/TCP")
    for tau in result.timescales:
        ee = result.equivalence_tfrc_tfrc[tau][0]
        cc = result.equivalence_tcp_tcp[tau][0]
        ec = result.equivalence_tfrc_tcp[tau][0]
        print(f"  {tau:5.1f}  {ee:9.2f}  {cc:7.2f}  {ec:8.2f}")
    for tau in result.timescales:
        ec = result.equivalence_tfrc_tcp[tau][0]
        # Paper: cross-protocol equivalence 0.6-0.8 over a broad range; we
        # accept a slightly wider band for the reduced run count.
        assert 0.45 <= ec <= 1.0, (tau, ec)
    # TFRC flows are equivalent to each other on a broader range of
    # timescales than TCP flows (paper's observation) -- check the shortest.
    shortest = result.timescales[0]
    assert (
        result.equivalence_tfrc_tfrc[shortest][0]
        >= result.equivalence_tcp_tcp[shortest][0] - 0.05
    )
