"""Ablation: the RTT EWMA weight (paper section 3.4).

Section 3.4 discusses the tension in the RTT smoothing weight:

* a small weight (0.1 or less) reacts weakly to RTT increases and lets
  TFRC flows overshoot DropTail buffers -- the Figure 3 oscillations;
* a large weight (0.5) gives delay-based congestion avoidance but its own
  short-term oscillations;
* the adopted design keeps a small weight for the *rate* calculation and
  recovers delay sensitivity through the sqrt-RTT interpacket-spacing term.

This ablation runs a single TFRC flow through the Dummynet pipe (the
Figure 3 setup: small DropTail buffer, no interpacket adjustment) across
EWMA weights and reports the send-rate coefficient of variation.  The
adopted configuration -- weight 0.05 *with* the interpacket adjustment --
is included as the reference and must be the smoothest.
"""

from repro.experiments import fig03_oscillation as fig03

WEIGHTS = (0.05, 0.2, 0.5)
BUFFER = 8


def run_ablation(duration=40.0):
    cov_by_weight = {}
    for weight in WEIGHTS:
        result = fig03.run(
            buffer_sizes=(BUFFER,),
            interpacket_adjustment=False,
            rtt_ewma_weight=weight,
            duration=duration,
        )
        cov_by_weight[weight] = result.cov_by_buffer[BUFFER]
    adopted = fig03.run(
        buffer_sizes=(BUFFER,),
        interpacket_adjustment=True,
        rtt_ewma_weight=0.05,
        duration=duration,
    )
    return cov_by_weight, adopted.cov_by_buffer[BUFFER]


def test_ablation_rtt_ewma(once, benchmark):
    cov_by_weight, adopted_cov = once(benchmark, run_ablation)
    print("\nRTT-EWMA-weight ablation (send-rate CoV, buffer "
          f"{BUFFER} pkts, no interpacket adjustment):")
    for weight, cov in sorted(cov_by_weight.items()):
        print(f"  weight {weight:.2f}: CoV {cov:.4f}")
    print(f"  adopted (0.05 + interpacket adjustment): CoV {adopted_cov:.4f}")

    # Oscillation is visible at every raw weight...
    assert all(cov > 0 for cov in cov_by_weight.values())
    # ...and the adopted design is smoother than every raw-weight variant.
    assert adopted_cov < min(cov_by_weight.values())