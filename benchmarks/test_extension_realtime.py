"""Extension bench: the real-world TFRC stack over loopback UDP.

The paper evaluated its userspace implementation against Dummynet
(section 4.3).  This bench runs the repository's real stack -- the same
protocol machines as the simulator, but over actual UDP sockets through
the :class:`~repro.rt.UdpImpairmentProxy` -- and checks the paper's two
headline real-world observations:

* the loss-event rate measured by the receiver matches the imposed loss
  in order of magnitude, and
* the sending rate lands in the neighbourhood of the control equation's
  prediction (the "remarkably fair" claim, loosened for a sub-3-second
  wall-clock run).

Unlike every other bench this one consumes real wall-clock time, so it is
kept deliberately short.
"""

import math

from repro.rt import drop_every_nth_data, run_loopback_session

PACKET_SIZE = 500
ONE_WAY_DELAY = 0.02
LOSS_PERIOD = 25


def run_realtime_scenario(duration=2.5):
    result = run_loopback_session(
        duration=duration,
        one_way_delay=ONE_WAY_DELAY,
        packet_size=PACKET_SIZE,
        loss_model=drop_every_nth_data(LOSS_PERIOD),
    )
    equation_pkts_per_rtt = (
        1.2 / math.sqrt(result.loss_event_rate)
        if result.loss_event_rate > 0
        else float("inf")
    )
    final_pkts_per_rtt = (
        result.final_rate_bps * result.srtt / PACKET_SIZE
        if result.srtt
        else 0.0
    )
    return {
        "sent": result.datagrams_sent,
        "received": result.datagrams_received,
        "dropped": result.datagrams_dropped,
        "p": result.loss_event_rate,
        "srtt": result.srtt,
        "eq_pkts_per_rtt": equation_pkts_per_rtt,
        "final_pkts_per_rtt": final_pkts_per_rtt,
    }


def test_extension_realtime(once, benchmark):
    result = once(benchmark, run_realtime_scenario)
    print("\nReal-stack (UDP loopback) extension:")
    print(f"  datagrams sent/received : {result['sent']}/{result['received']}")
    print(f"  proxy drops             : {result['dropped']}")
    print(f"  loss event rate p       : {result['p']:.4f} "
          f"(imposed packet loss {1 / LOSS_PERIOD:.4f})")
    srtt_ms = result["srtt"] * 1e3 if result["srtt"] else float("nan")
    print(f"  smoothed RTT            : {srtt_ms:.1f} ms "
          f"(proxy RTT {2 * ONE_WAY_DELAY * 1e3:.0f} ms)")
    print(f"  equation rate           : {result['eq_pkts_per_rtt']:.1f} pkts/RTT")
    print(f"  final allowed rate      : {result['final_pkts_per_rtt']:.1f} pkts/RTT")

    assert result["sent"] > 30
    assert result["dropped"] > 0
    # p in the right decade around 1/25.
    assert 0.25 / LOSS_PERIOD < result["p"] < 6.0 / LOSS_PERIOD
    # SRTT tracks the imposed proxy RTT.
    assert result["srtt"] is not None
    assert 2 * ONE_WAY_DELAY * 0.8 < result["srtt"] < 2 * ONE_WAY_DELAY * 3.0
    # The allowed rate is within a factor of ~4 of the equation's target
    # (short run, wall-clock jitter).
    assert result["final_pkts_per_rtt"] > result["eq_pkts_per_rtt"] / 4
    assert result["final_pkts_per_rtt"] < result["eq_pkts_per_rtt"] * 4