"""Figure 5 bench: loss-event fraction vs Bernoulli loss probability.

Regenerates the three curves (flows at 0.5x / 1x / 2x the equation rate)
and checks the section 3.5.1 claims: p_event <= p_loss everywhere, small
difference at low and high loss, moderate (~10%) difference in between for
the 1x flow.
"""

import numpy as np

from repro.experiments import fig05_loss_event_fraction as fig05


def test_fig05_loss_event_fraction(once, benchmark):
    result = once(
        benchmark, fig05.run,
        p_loss_values=np.linspace(0.005, 0.25, 20),
        monte_carlo=True, mc_packets=60_000,
    )
    for multiplier, curve in result.p_event_by_multiplier.items():
        for p_loss, p_event in zip(result.p_loss_values, curve):
            assert 0.0 <= p_event <= p_loss + 1e-12
    # 1x flow: the gap stays moderate (paper: at most ~10%).
    assert result.max_relative_gap(1.0) < 0.15
    # Faster flows coalesce more (larger gap), slower flows less.
    assert result.max_relative_gap(2.0) >= result.max_relative_gap(1.0)
    assert result.max_relative_gap(1.0) >= result.max_relative_gap(0.5)
    # Monte-Carlo agrees with the analytic curves.
    for multiplier in (1.0,):
        analytic = np.array(result.p_event_by_multiplier[multiplier])
        simulated = np.array(result.p_event_monte_carlo[multiplier])
        mask = analytic > 1e-4
        rel = np.abs(simulated[mask] - analytic[mask]) / analytic[mask]
        assert np.median(rel) < 0.2

    print("\nFigure 5 reproduction (max relative p_loss vs p_event gap):")
    for multiplier in sorted(result.p_event_by_multiplier):
        print(f"  rate x{multiplier}: {result.max_relative_gap(multiplier) * 100:.1f}%")
