"""Figure 6 bench: normalized TCP throughput when competing with TFRC.

A reduced version of the paper's (link rate x flow count x queue type)
grid.  Asserts the headline claims: both protocols within a fair band,
network utilization above 90% for the RED/DropTail aggregate cases.
"""

from repro.experiments import fig06_fairness_grid as fig06

LINK_RATES = (8, 16)
FLOW_COUNTS = (8, 32)


def test_fig06_fairness_grid(once, benchmark):
    result = once(
        benchmark, fig06.run,
        link_rates_mbps=LINK_RATES, flow_counts=FLOW_COUNTS,
        queue_types=("droptail", "red"), duration=60.0,
    )
    print("\nFigure 6 reproduction (mean normalized throughput):")
    for cell in result.cells:
        print(
            f"  {cell.queue_type:9s} {cell.link_bps / 1e6:4.0f}Mb/s "
            f"{cell.total_flows:3d} flows: TCP {cell.mean_tcp_normalized:.2f} "
            f"TFRC {cell.mean_tfrc_normalized:.2f} util {cell.utilization:.2f}"
        )
    for cell in result.cells:
        # Fairness band: neither protocol starved nor hogging (paper: TCP
        # throughput "similar to what it would be if the competing traffic
        # was TCP"; worst cases stay within ~2x).
        assert 0.4 < cell.mean_tcp_normalized < 1.7, cell
        assert 0.4 < cell.mean_tfrc_normalized < 1.7, cell
        # Paper: utilization always > 90% (we allow a little slack for the
        # shorter runs).
        assert cell.utilization > 0.8, cell
