"""Figure 3 bench: TFRC oscillations over a Dummynet pipe, no damping.

Sweeps the DropTail buffer and reports the steady-state send-rate CoV; the
companion Figure 4 bench shows the same sweep with the interpacket-spacing
adjustment enabled.
"""

from repro.experiments import fig03_oscillation as fig03

BUFFERS = (2, 8, 32, 64)


def test_fig03_oscillation_without_adjustment(once, benchmark):
    result = once(
        benchmark, fig03.run,
        buffer_sizes=BUFFERS, interpacket_adjustment=False, duration=40.0,
    )
    # The flow must achieve sane throughput at every buffer size...
    for buffer_packets in BUFFERS:
        assert result.mean_rate_by_buffer[buffer_packets] > 50.0  # KB/s
    # ...and its rate visibly fluctuates (this is the motivation figure).
    assert max(result.cov_by_buffer.values()) > 0.02
    print("\nFigure 3 reproduction (send-rate CoV, no damping):")
    for buffer_packets in BUFFERS:
        print(
            f"  buffer {buffer_packets:3d} pkts: CoV {result.cov_by_buffer[buffer_packets]:.3f} "
            f"mean {result.mean_rate_by_buffer[buffer_packets]:.0f} KB/s"
        )
