"""Figure 4 bench: oscillations prevented by the sqrt-RTT interpacket
spacing adjustment (section 3.4).

The headline assertion: at small-to-moderate buffers the adjusted flow's
send-rate CoV is lower than the unadjusted flow's from the Figure 3 bench.
"""

from repro.experiments import fig03_oscillation as fig03

BUFFERS = (2, 8, 32, 64)


def test_fig04_oscillation_damped(once, benchmark):
    damped = once(
        benchmark, fig03.run,
        buffer_sizes=BUFFERS, interpacket_adjustment=True, duration=40.0,
    )
    plain = fig03.run(
        buffer_sizes=BUFFERS, interpacket_adjustment=False, duration=40.0
    )
    improved = sum(
        damped.cov_by_buffer[b] <= plain.cov_by_buffer[b] + 0.01 for b in BUFFERS
    )
    # The adjustment must help (or at least not hurt) at most buffer sizes.
    assert improved >= 3
    # And throughput is not sacrificed.
    for b in BUFFERS:
        assert damped.mean_rate_by_buffer[b] > 0.5 * plain.mean_rate_by_buffer[b]
    print("\nFigure 4 reproduction (CoV without -> with adjustment):")
    for b in BUFFERS:
        print(
            f"  buffer {b:3d}: {plain.cov_by_buffer[b]:.3f} -> "
            f"{damped.cov_by_buffer[b]:.3f}"
        )
