"""Figure 8 bench: per-flow throughput traces at the 0.15 s timescale.

The paper's visual claim, quantified: at tau = 0.15 s (where bandwidth
variation starts to be noticeable to multimedia users) TFRC's traces are
much smoother than TCP's, on both RED and DropTail bottlenecks.
"""

from repro.experiments import fig08_smoothness as fig08


def test_fig08_smoothness(once, benchmark):
    red = once(benchmark, fig08.run, queue_type="red", duration=30.0)
    droptail = fig08.run(queue_type="droptail", duration=30.0)
    print("\nFigure 8 reproduction (mean CoV of 0.15 s throughput):")
    for result in (red, droptail):
        print(
            f"  {result.queue_type:9s}: TCP {result.mean_cov_tcp:.2f}  "
            f"TFRC {result.mean_cov_tfrc:.2f}"
        )
    for result in (red, droptail):
        assert result.mean_cov_tfrc < result.mean_cov_tcp
        assert len(result.traces_tcp) == 4 and len(result.traces_tfrc) == 4
        # Every traced flow actually carried traffic.
        for series in list(result.traces_tcp.values()) + list(result.traces_tfrc.values()):
            assert sum(series) > 0
