"""Figure 17 bench: CoV of TFRC and TCP over the five named paths.

Paper's observation: TFRC is smoother than TCP on every path; the Solaris
TCP trace is abnormally variable (its defect shows in the CoV plot) while
the corresponding TFRC trace is normal.
"""

import numpy as np

from repro.experiments import internet


def test_fig17_internet_cov(once, benchmark):
    results = once(benchmark, internet.run_all, duration=90.0)
    print("\nFigure 17 reproduction (CoV at the shortest timescale):")
    smoother = 0
    for name, result in results.items():
        tau = sorted(result.cov_tfrc_by_tau)[0]
        cov_tfrc = result.cov_tfrc_by_tau[tau]
        cov_tcp = result.cov_tcp_by_tau[tau]
        print(f"  {name:14s} TFRC {cov_tfrc:.2f}  TCP {cov_tcp:.2f}")
        if cov_tfrc < cov_tcp:
            smoother += 1
    # TFRC smoother on (almost) every path.
    assert smoother >= len(results) - 1
