"""Figure 18 bench: prediction quality of the TFRC loss estimator.

Scores constant- vs decreasing-weight predictors at history sizes 2..32 on
loss-interval traces collected from the synthetic Internet paths.  The
paper's shape: errors are broadly flat in history size (n=8 is a reasonable
choice); decreasing weights cost essentially nothing in accuracy.
"""

from repro.experiments import fig18_predictor as fig18


def test_fig18_predictor(once, benchmark):
    result = once(benchmark, fig18.run, duration=100.0)
    print("\nFigure 18 reproduction (mean prediction error):")
    print("  history  constant   decreasing")
    for history in result.history_sizes:
        c_mean, _ = result.constant_weights[history]
        d_mean, _ = result.decreasing_weights[history]
        print(f"  {history:7d}  {c_mean:.4f}    {d_mean:.4f}")
    # Errors are finite, positive and of the right order for the loss rates
    # involved (paper's y-axis: 0..0.01).
    for bucket in (result.constant_weights, result.decreasing_weights):
        for history, (mean_err, std_err) in bucket.items():
            assert 0.0 <= mean_err < 0.2
            assert std_err >= 0.0
    # Decreasing weights do not cost much accuracy at the paper's n=8.
    c8 = result.constant_weights[8][0]
    d8 = result.decreasing_weights[8][0]
    assert d8 <= c8 * 1.3 + 1e-6
    # The error landscape is broadly flat: best and worst history sizes
    # differ by less than a factor of three.
    means = [result.decreasing_weights[h][0] for h in result.history_sizes]
    assert max(means) < 3 * min(means) + 1e-6
