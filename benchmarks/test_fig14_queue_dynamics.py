"""Figure 14 bench: queue dynamics under 40 TCP vs 40 TFRC flows.

Paper's claims: both configurations keep the DropTail bottleneck highly
utilized; TFRC's drop rate is comparable or lower (4.9% TCP vs 3.5% TFRC in
the paper); TFRC "does not have a negative impact on queue dynamics".
"""

from repro.experiments import fig14_queue_dynamics as fig14


def test_fig14_queue_dynamics(once, benchmark):
    result = once(benchmark, fig14.run, duration=30.0)
    print("\nFigure 14 reproduction (40 long-lived flows, DropTail):")
    for res in (result.tcp, result.tfrc):
        print(
            f"  {res.protocol:5s}: drop {res.drop_rate * 100:4.1f}%  "
            f"util {res.utilization:.2f}  queue {res.mean_queue:.0f} "
            f"+- {res.queue_std:.0f} pkts"
        )
    # High utilization for both (paper: 99%; shorter warm-up here).
    assert result.tcp.utilization > 0.75
    assert result.tfrc.utilization > 0.75
    # Drop rates in the single-digit-percent regime, TFRC not worse than
    # ~1.5x TCP (paper: TFRC strictly lower).
    assert 0.001 < result.tcp.drop_rate < 0.15
    assert 0.001 < result.tfrc.drop_rate < 0.15
    assert result.tfrc.drop_rate < 1.5 * result.tcp.drop_rate
    # Queue occupied but not permanently pinned at either extreme.
    for res in (result.tcp, result.tfrc):
        assert 0 < res.mean_queue < 250
