"""Figure 13 bench: CoV of TFRC and TCP with ON/OFF background traffic.

Paper's shape: TFRC's send rate is much smoother than TCP's, especially at
high loss; CoV values are much higher than in the steady-state scenario
(Figure 10) because of the variable background.
"""

from repro.experiments import fig11_onoff as fig11


def test_fig13_onoff_cov(once, benchmark):
    result = once(benchmark, fig11.run_one, 100, duration=150.0)
    print("\nFigure 13 reproduction (CoV by timescale, 100 ON/OFF sources):")
    print("  tau     CoV(TFRC)  CoV(TCP)")
    for tau in sorted(result.cov_tfrc_by_tau):
        print(
            f"  {tau:5.1f}  {result.cov_tfrc_by_tau[tau]:9.2f}  "
            f"{result.cov_tcp_by_tau[tau]:8.2f}"
        )
    # TFRC is smoother at short timescales; at long timescales the two
    # converge (and can cross: TFRC's slow recovery adds long-horizon
    # variability), which matches the shape of the paper's Figure 13.
    short_taus = [t for t in result.cov_tfrc_by_tau if t <= 1.0]
    assert short_taus
    for t in short_taus:
        assert result.cov_tfrc_by_tau[t] < result.cov_tcp_by_tau[t]
