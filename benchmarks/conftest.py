"""Shared benchmark configuration.

Each benchmark runs its figure's experiment once (rounds=1): these are
whole-simulation macro-benchmarks, not micro-benchmarks, and the interesting
outputs are the *figures' numbers*, which every bench also asserts against
the paper's qualitative shape before reporting timing.
"""

import os

import pytest


BENCHMARK_DIR = os.path.dirname(os.path.abspath(__file__))


def pytest_collection_modifyitems(items):
    """Every benchmark is a whole-figure (or timing-sensitive) run: mark
    them all ``slow`` so ``pytest -m "not slow"`` is the sub-minute smoke
    tier while plain ``pytest`` keeps running everything.  The hook sees
    the whole session's items, so restrict it to this directory."""
    for item in items:
        if os.path.dirname(os.path.abspath(str(item.fspath))) == BENCHMARK_DIR:
            item.add_marker(pytest.mark.slow)


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once():
    return run_once
