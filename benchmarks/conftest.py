"""Shared benchmark configuration.

Each benchmark runs its figure's experiment once (rounds=1): these are
whole-simulation macro-benchmarks, not micro-benchmarks, and the interesting
outputs are the *figures' numbers*, which every bench also asserts against
the paper's qualitative shape before reporting timing.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once():
    return run_once
