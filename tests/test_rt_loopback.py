"""Integration tests: full TFRC over real UDP sockets on loopback.

These run the same protocol machines as the simulation tests but through
the OS UDP stack, the wire encodings, and the impairment proxy.  Durations
are kept short (fractions of a second of wall-clock time); assertions are
correspondingly loose -- the precise dynamics are validated in simulation,
here we verify the real stack plumbs end to end.
"""

import numpy as np
import pytest

from repro.rt import (
    RealtimeScheduler,
    UdpImpairmentProxy,
    UdpTfrcReceiver,
    UdpTfrcSender,
    drop_bernoulli,
    drop_every_nth_data,
    run_loopback_session,
)
from repro.wire.headers import DATA_HEADER_SIZE


class TestLoopbackSession:
    def test_clean_path_delivers_everything(self):
        result = run_loopback_session(duration=0.8, one_way_delay=0.01)
        assert result.datagrams_sent > 10
        # Nothing is dropped; only packets still in flight at shutdown may
        # be missing.
        assert result.datagrams_dropped == 0
        assert result.datagrams_received >= result.datagrams_sent * 0.8
        assert result.feedback_received > 0
        assert result.loss_event_rate == 0.0

    def test_periodic_loss_detected(self):
        result = run_loopback_session(
            duration=1.2, one_way_delay=0.01,
            loss_model=drop_every_nth_data(20),
        )
        assert result.datagrams_dropped > 0
        assert result.datagrams_received < result.datagrams_sent
        # The receiver's p estimate lands in the right decade.
        assert 0.005 < result.loss_event_rate < 0.25

    def test_rtt_measured_through_proxy(self):
        delay = 0.025
        result = run_loopback_session(duration=0.8, one_way_delay=delay)
        assert result.srtt is not None
        # SRTT approximates 2 * one-way delay (plus scheduling jitter).
        assert 2 * delay * 0.8 < result.srtt < 2 * delay * 3.0

    def test_bandwidth_cap_limits_rate(self):
        cap = 40_000.0  # bits/second
        result = run_loopback_session(
            duration=1.5, one_way_delay=0.01,
            bandwidth_bps=cap, packet_size=200,
        )
        bytes_per_sec = result.datagrams_received * 200 / result.duration
        # Delivered goodput cannot exceed the pipe rate (with slack for
        # the final in-flight packets).
        assert bytes_per_sec <= cap / 8 * 1.5

    def test_bernoulli_loss_session(self):
        result = run_loopback_session(
            duration=1.0, one_way_delay=0.01,
            loss_model=drop_bernoulli(0.1, np.random.default_rng(1)),
        )
        assert result.datagrams_received > 0
        assert result.delivery_ratio < 1.0

    def test_rejects_nonpositive_duration(self):
        with pytest.raises(ValueError):
            run_loopback_session(duration=0.0)


class TestEndpointDetails:
    def test_sender_rejects_tiny_packet_size(self):
        sched = RealtimeScheduler()
        with pytest.raises(ValueError):
            UdpTfrcSender(sched, peer=("127.0.0.1", 9), packet_size=DATA_HEADER_SIZE - 1)

    def test_direct_sender_receiver_no_proxy(self):
        sched = RealtimeScheduler()
        receiver = UdpTfrcReceiver(sched)
        sender = UdpTfrcSender(
            sched, peer=receiver.local_address,
            packet_size=300, initial_rtt=0.02,
        )
        try:
            sender.start()
            sched.run(until=0.4)
            assert receiver.datagrams_received > 0
            assert sender.feedback_datagrams > 0
            assert sender.malformed_datagrams == 0
            assert receiver.malformed_datagrams == 0
        finally:
            sender.close()
            receiver.close()

    def test_malformed_datagrams_counted_not_raised(self):
        sched = RealtimeScheduler()
        receiver = UdpTfrcReceiver(sched)
        import socket as socket_mod

        junk_sock = socket_mod.socket(socket_mod.AF_INET, socket_mod.SOCK_DGRAM)
        try:
            junk_sock.sendto(b"not a tfrc packet", receiver.local_address)
            junk_sock.sendto(b"", receiver.local_address)
            sched.run(until=0.1)
            assert receiver.malformed_datagrams == 2
            assert receiver.datagrams_received == 0
        finally:
            junk_sock.close()
            receiver.close()

    def test_wrong_flow_id_rejected(self):
        sched = RealtimeScheduler()
        receiver = UdpTfrcReceiver(sched, flow_id=5)
        sender = UdpTfrcSender(
            sched, peer=receiver.local_address, flow_id=6,
            packet_size=300, initial_rtt=0.02,
        )
        try:
            sender.start()
            sched.run(until=0.2)
            assert receiver.datagrams_received == 0
            assert receiver.malformed_datagrams > 0
        finally:
            sender.close()
            receiver.close()


class TestProxy:
    def test_validation(self):
        sched = RealtimeScheduler()
        with pytest.raises(ValueError):
            UdpImpairmentProxy(sched, server=("127.0.0.1", 9), delay=-1.0)
        with pytest.raises(ValueError):
            UdpImpairmentProxy(sched, server=("127.0.0.1", 9), bandwidth_bps=0)
        with pytest.raises(ValueError):
            UdpImpairmentProxy(sched, server=("127.0.0.1", 9), queue_packets=0)

    def test_drop_every_nth_only_counts_data(self):
        from repro.wire.headers import DataPacket, FeedbackPacket

        model = drop_every_nth_data(2)
        data = DataPacket(flow_id=1, seq=0, send_ts_us=0, rtt_us=0).encode()
        fb = FeedbackPacket(flow_id=1, echo_seq=0, echo_ts_us=0, delay_us=0,
                            p=0.0, recv_rate=0).encode()
        verdicts = [model(data, 0.0), model(fb, 0.0), model(data, 0.0),
                    model(data, 0.0)]
        # Data datagrams 1, 2, 3: the 2nd drops; feedback never does.
        assert verdicts == [False, False, True, False]

    def test_drop_every_nth_validation(self):
        with pytest.raises(ValueError):
            drop_every_nth_data(0)

    def test_drop_bernoulli_validation(self):
        with pytest.raises(ValueError):
            drop_bernoulli(1.0, np.random.default_rng(0))
