"""Integration: apps-layer analyses over real simulation traces.

Verifies the playout and adaptation analyses compose with the arrival
traces :class:`repro.net.monitor.FlowMonitor` records during actual
simulations (format compatibility plus sane end-to-end numbers).
"""

import numpy as np

from repro.analysis.timeseries import arrivals_to_rate_series
from repro.apps import QualityAdapter, simulate_playout
from repro.experiments.common import run_single_tfrc_on_lossy_path
from repro.net.path import periodic_loss


def run_flow(duration=40.0):
    result = run_single_tfrc_on_lossy_path(
        loss_model=periodic_loss(100), duration=duration, rtt=0.1,
    )
    return result.flow_monitor.arrivals["tfrc"], duration


class TestPlayoutOverSimTrace:
    def test_playout_consumes_monitor_arrivals(self):
        arrivals, duration = run_flow()
        steady = [(t, b) for t, b in arrivals if t >= 10.0]
        bytes_delivered = sum(b for _, b in steady)
        mean_bps = bytes_delivered * 8 / (duration - 10.0)
        stats = simulate_playout(steady, media_rate_bps=0.5 * mean_bps,
                                 prebuffer_seconds=2.0, end_time=duration)
        # Media at half the delivered rate: plays cleanly.
        assert stats.startup_delay < 10.0
        assert stats.rebuffer_events == 0
        assert stats.played_seconds > 20.0

    def test_overprovisioned_media_rate_stalls(self):
        arrivals, duration = run_flow()
        steady = [(t, b) for t, b in arrivals if t >= 10.0]
        mean_bps = sum(b for _, b in steady) * 8 / (duration - 10.0)
        stats = simulate_playout(steady, media_rate_bps=3.0 * mean_bps,
                                 prebuffer_seconds=1.0, end_time=duration)
        # Asking for 3x the delivery cannot play smoothly.
        assert stats.rebuffer_events >= 1 or stats.startup_delay > 5.0


class TestAdaptationOverSimTrace:
    def test_adapter_consumes_rate_series(self):
        arrivals, duration = run_flow()
        rates = arrivals_to_rate_series(arrivals, 10.0, duration, 0.5)
        rates_bps = [8 * r for r in rates]
        result = QualityAdapter(up_stability=3.0).replay(rates_bps, tau=0.5)
        assert len(result.choices) == len(rates_bps)
        # The flow delivers ~100 KB/s+: some ladder level is sustained.
        assert max(result.choices) >= 0
        assert result.mean_bitrate_bps() <= float(np.mean(rates_bps))
