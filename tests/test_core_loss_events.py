"""Unit tests for receiver-side loss-event detection."""

import pytest

from repro.core.loss_events import LossEventDetector


def make_detector(rtt=0.1, tolerance=3, events=None):
    return LossEventDetector(
        rtt_fn=lambda: rtt,
        reorder_tolerance=tolerance,
        on_event=(events.append if events is not None else None),
    )


def feed(detector, seqs_and_times):
    out = []
    for seq, t in seqs_and_times:
        out.extend(detector.on_arrival(seq, t))
    return out


class TestDetection:
    def test_no_gaps_no_events(self):
        det = make_detector()
        events = feed(det, [(i, i * 0.01) for i in range(50)])
        assert events == []
        assert det.packets_lost == 0

    def test_hole_declared_after_tolerance(self):
        det = make_detector(tolerance=3)
        feed(det, [(0, 0.00), (2, 0.02)])   # hole at 1, 1 follower
        assert det.packets_lost == 0
        feed(det, [(3, 0.03)])              # 2 followers
        assert det.packets_lost == 0
        events = feed(det, [(4, 0.04)])     # 3rd follower: declared
        assert det.packets_lost == 1
        assert len(events) == 1
        assert events[0].first_lost_seq == 1

    def test_late_arrival_cancels_hole(self):
        det = make_detector(tolerance=3)
        feed(det, [(0, 0.00), (2, 0.02), (1, 0.03), (3, 0.04), (4, 0.05), (5, 0.06)])
        assert det.packets_lost == 0

    def test_losses_within_rtt_are_one_event(self):
        """Section 3.5.1: multiple drops in one RTT are a single loss event."""
        det = make_detector(rtt=0.1)
        # Arrivals every 10 ms; holes at 1 and 3 -- 20 ms apart < RTT.
        feed(det, [(0, 0.00), (2, 0.02), (4, 0.04), (5, 0.05),
                   (6, 0.06), (7, 0.07), (8, 0.08)])
        assert det.packets_lost == 2
        assert len(det.events) == 1

    def test_losses_beyond_rtt_are_separate_events(self):
        det = make_detector(rtt=0.05)
        arrivals = [(0, 0.0), (2, 0.02)]
        arrivals += [(i, i * 0.01) for i in range(3, 40)]  # hole at 1
        # second hole at 40, interpolated at t=0.40: far beyond 1 RTT later
        arrivals += [(i, i * 0.01) for i in range(41, 50)]
        feed(det, arrivals)
        assert len(det.events) == 2

    def test_long_burst_hole_splits_by_interpolated_time(self):
        """A contiguous hole whose interpolated loss times span more than one
        RTT is split into multiple loss events (RFC 5348 section 5.2)."""
        det = make_detector(rtt=0.05)
        arrivals = [(i, i * 0.01) for i in range(30)]
        # Hole 30..40 interpolates across 0.30..0.40 (> 2 RTTs): 3 events.
        arrivals += [(41, 0.41)] + [(i, i * 0.01) for i in range(42, 50)]
        feed(det, arrivals)
        assert len(det.events) == 3
        assert det.packets_lost == 11

    def test_interval_is_sequence_distance_between_event_starts(self):
        det = make_detector(rtt=0.01)
        arrivals = [(i, i * 0.01) for i in range(10)]        # 0..9 fine
        arrivals += [(11, 0.11)] + [(i, i * 0.01) for i in range(12, 30)]  # hole 10
        arrivals += [(31, 0.31)] + [(i, i * 0.01) for i in range(32, 40)]  # hole 30
        feed(det, arrivals)
        assert len(det.events) == 2
        assert det.events[1].closed_interval == 20  # seq 30 - seq 10

    def test_on_event_callback(self):
        events = []
        det = make_detector(events=events)
        feed(det, [(0, 0.0), (2, 0.02), (3, 0.03), (4, 0.04)])
        assert len(events) == 1

    def test_open_interval_counts_from_event_start(self):
        det = make_detector(rtt=0.01)
        feed(det, [(i, i * 0.01) for i in range(5)])
        assert det.open_interval_packets() == 5  # no event yet: all packets
        feed(det, [(6, 0.06), (7, 0.07), (8, 0.08), (9, 0.09)])  # hole at 5
        assert det.events
        # highest seq 9, event started at seq 5 -> s0 = 4
        assert det.open_interval_packets() == 4

    def test_burst_gap_interpolation(self):
        """A many-packet gap spreads interpolated loss times over the gap."""
        det = make_detector(rtt=0.001, tolerance=1)
        feed(det, [(0, 0.0), (10, 1.0)])
        # 9 holes, spread between t=0 and t=1; far apart (>> rtt) so each is
        # its own event.
        assert det.packets_lost == 9
        assert len(det.events) == 9
        times = [e.time for e in det.events]
        assert times == sorted(times)
        assert 0.0 < times[0] < times[-1] < 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            LossEventDetector(rtt_fn=lambda: 0.1, reorder_tolerance=-1)
