"""TCP sender tests: window dynamics, recovery per variant, timeouts.

These run the real sender against the real sink over a LossyPath so the
whole feedback loop is exercised with exactly controlled losses.
"""

import pytest

from repro.net.path import LossyPath, periodic_loss
from repro.sim.engine import Simulator
from repro.tcp import TCP_VARIANTS, make_tcp_sender
from repro.tcp.flow import TcpFlow


def run_flow(variant, loss_model=None, duration=20.0, rtt=0.1, bw=None, **kwargs):
    sim = Simulator()
    forward = LossyPath(sim, delay=rtt / 2, loss_model=loss_model, bandwidth_bps=bw)
    reverse = LossyPath(sim, delay=rtt / 2)
    received = []
    flow = TcpFlow(
        sim, "t", forward, reverse, variant=variant,
        on_data=lambda t, p: received.append(p.seq), **kwargs,
    )
    flow.start()
    sim.run(until=duration)
    return flow, received, sim


class TestBasics:
    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            make_tcp_sender("vegas", Simulator(), "f", send_packet=lambda p: None)

    @pytest.mark.parametrize("variant", sorted(TCP_VARIANTS))
    def test_lossless_delivery_in_order(self, variant):
        flow, received, _ = run_flow(variant, duration=5.0)
        assert len(received) > 100
        assert received == sorted(received)

    @pytest.mark.parametrize("variant", sorted(TCP_VARIANTS))
    def test_slow_start_doubles_window(self, variant):
        sim = Simulator()
        forward = LossyPath(sim, delay=0.05)
        reverse = LossyPath(sim, delay=0.05)
        flow = TcpFlow(sim, "t", forward, reverse, variant=variant,
                       initial_ssthresh=1000)
        flow.start()
        sim.run(until=0.45)  # ~4 RTTs
        # cwnd ~ 2 * 2^4 = 32 after four doublings
        assert 16 <= flow.sender.cwnd <= 64

    def test_window_limits_outstanding(self):
        flow, _, _ = run_flow("sack", duration=2.0)
        sender = flow.sender
        assert sender.outstanding <= int(sender.cwnd) + 1

    def test_finite_transfer_completes(self):
        done = []
        sim = Simulator()
        forward = LossyPath(sim, delay=0.05)
        reverse = LossyPath(sim, delay=0.05)
        flow = TcpFlow(sim, "t", forward, reverse, variant="sack",
                       packets_to_send=50, on_complete=lambda: done.append(1))
        flow.start()
        sim.run(until=10.0)
        assert done == [1]
        assert flow.sender.is_complete
        assert flow.sender.packets_sent >= 50

    def test_finite_transfer_completes_despite_loss(self):
        sim = Simulator()
        forward = LossyPath(sim, delay=0.05, loss_model=periodic_loss(17))
        reverse = LossyPath(sim, delay=0.05)
        done = []
        flow = TcpFlow(sim, "t", forward, reverse, variant="sack",
                       packets_to_send=100, on_complete=lambda: done.append(1))
        flow.start()
        sim.run(until=60.0)
        assert done == [1]


class TestCongestionResponse:
    @pytest.mark.parametrize("variant", sorted(TCP_VARIANTS))
    def test_periodic_loss_caps_rate(self, variant):
        """With p=1% the equation-fair rate is ~12 pkt/RTT; the flow must
        throttle far below the lossless case."""
        lossy_flow, lossy_received, _ = run_flow(
            variant, loss_model=periodic_loss(100), duration=30.0
        )
        clean_flow, clean_received, _ = run_flow(variant, duration=30.0)
        assert len(lossy_received) < len(clean_received) / 2

    @pytest.mark.parametrize("variant", sorted(TCP_VARIANTS))
    def test_loss_triggers_window_reduction(self, variant):
        flow, _, _ = run_flow(variant, loss_model=periodic_loss(50), duration=10.0)
        sender = flow.sender
        assert sender.fast_retransmits + sender.timeouts > 0
        assert sender.cwnd < 64  # well below initial ssthresh growth

    def test_tahoe_resets_to_one(self):
        sim = Simulator()
        forward = LossyPath(sim, delay=0.05, loss_model=periodic_loss(30))
        reverse = LossyPath(sim, delay=0.05)
        flow = TcpFlow(sim, "t", forward, reverse, variant="tahoe")
        cwnd_after_loss = []
        original = flow.sender.on_dupack_threshold

        def spy():
            original()
            cwnd_after_loss.append(flow.sender.cwnd)

        flow.sender.on_dupack_threshold = spy
        flow.start()
        sim.run(until=10.0)
        assert cwnd_after_loss
        assert all(c == 1.0 for c in cwnd_after_loss)

    def test_reno_enters_fast_recovery(self):
        sim = Simulator()
        forward = LossyPath(sim, delay=0.05, loss_model=periodic_loss(40))
        reverse = LossyPath(sim, delay=0.05)
        flow = TcpFlow(sim, "t", forward, reverse, variant="reno")
        flow.start()
        sim.run(until=5.0)
        assert flow.sender.fast_retransmits > 0
        # Reno never goes back to cwnd=1 on a fast retransmit alone.
        assert flow.sender.cwnd >= 1.0

    def test_sack_repairs_multiple_losses_without_timeout(self):
        """A burst of 3 losses in one window should be repaired by SACK
        recovery without resorting to a retransmission timeout."""
        drop_these = {50, 52, 54}

        def burst_loss(packet, now):
            # One-shot: each listed seq is dropped once; the retransmission
            # goes through.
            if packet.is_data and packet.seq in drop_these:
                drop_these.discard(packet.seq)
                return True
            return False

        sim = Simulator()
        forward = LossyPath(sim, delay=0.05, loss_model=burst_loss)
        reverse = LossyPath(sim, delay=0.05)
        flow = TcpFlow(sim, "t", forward, reverse, variant="sack")
        flow.start()
        sim.run(until=10.0)
        assert flow.sender.timeouts == 0
        assert flow.sender.retransmissions >= 3
        assert flow.sender.snd_una > 60

    def test_timeout_on_total_blackout(self):
        """If everything is lost the RTO must fire and back off."""

        def blackout(packet, now):
            return now > 1.0

        sim = Simulator()
        forward = LossyPath(sim, delay=0.05, loss_model=blackout)
        reverse = LossyPath(sim, delay=0.05)
        flow = TcpFlow(sim, "t", forward, reverse, variant="sack")
        flow.start()
        sim.run(until=30.0)
        assert flow.sender.timeouts >= 2
        assert flow.sender.cwnd == 1.0

    def test_karn_rule_no_sample_from_retransmission(self):
        sim = Simulator()
        forward = LossyPath(sim, delay=0.05, loss_model=periodic_loss(20))
        reverse = LossyPath(sim, delay=0.05)
        flow = TcpFlow(sim, "t", forward, reverse, variant="sack")
        flow.start()
        sim.run(until=5.0)
        # SRTT must reflect the true ~0.1s RTT, unpolluted by retransmission
        # ambiguity (echo of a retransmitted segment measured from first send).
        assert flow.sender.rto_estimator.srtt == pytest.approx(0.1, abs=0.05)


class TestRecoveryBookkeeping:
    def test_no_unbounded_recovery_sending(self):
        """Regression for the recovery pipe bug: during mass loss the SACK
        sender must not balloon its outstanding data beyond cwnd."""
        sim = Simulator()

        def heavy(packet, now):
            return packet.is_data and 1.0 < now < 1.3 and packet.seq % 2 == 0

        forward = LossyPath(sim, delay=0.05, loss_model=heavy)
        reverse = LossyPath(sim, delay=0.05)
        flow = TcpFlow(sim, "t", forward, reverse, variant="sack")
        flow.start()
        worst = [0.0]

        def probe():
            sender = flow.sender
            if sender.in_recovery:
                worst[0] = max(worst[0], sender.outstanding / max(sender.cwnd, 1))
            if sim.now < 6.0:
                sim.schedule_in(0.01, probe)

        sim.schedule_in(0.01, probe)
        sim.run(until=6.0)
        # Outstanding may briefly exceed cwnd (it was sent before the loss),
        # but must never grow beyond the pre-loss flight plus a small margin.
        assert worst[0] < 3.0
