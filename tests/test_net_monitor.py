"""Unit tests for link and flow monitors."""

import pytest

from repro.net.link import Link
from repro.net.monitor import FlowMonitor, LinkMonitor
from repro.net.packet import Packet
from repro.net.queues import DropTailQueue
from repro.sim.engine import Simulator
from repro.sim.trace import Tracer


def make_packet(flow, seq=0, size=1000):
    return Packet(flow_id=flow, seq=seq, size=size)


class TestLinkMonitor:
    def make(self, capacity=2, bw=8e6):
        sim = Simulator()
        link = Link(sim, bw, 0.01, DropTailQueue(capacity))
        link.connect(lambda p: None)
        monitor = LinkMonitor(sim, link, sample_queue=True)
        return sim, link, monitor

    def test_drops_recorded_with_flow_id(self):
        sim, link, monitor = self.make(capacity=1)
        for i in range(5):
            link.send(make_packet("f", i))
        assert monitor.drop_count == 3  # 1 transmitting + 1 queued survive
        assert all(fid == "f" for _, fid in monitor.drops)

    def test_loss_rate(self):
        sim, link, monitor = self.make(capacity=1)
        for i in range(4):
            link.send(make_packet("f", i))
        # 2 accepted (1 tx + 1 queued), 2 dropped.
        assert monitor.loss_rate() == pytest.approx(0.5)

    def test_loss_rate_empty_link(self):
        _, _, monitor = self.make()
        assert monitor.loss_rate() == 0.0

    def test_queue_samples_collected(self):
        sim, link, monitor = self.make(capacity=10)
        for i in range(3):
            link.send(make_packet("f", i))
        sim.run()
        assert monitor.queue_samples
        depths = [d for _, d in monitor.queue_samples]
        assert max(depths) >= 1

    def test_queue_series_window(self):
        sim, link, monitor = self.make(capacity=10)
        link.send(make_packet("f", 0))
        sim.run()
        assert monitor.queue_series(t_min=100.0) == []

    def test_utilization(self):
        sim, link, monitor = self.make(capacity=10, bw=8e6)
        for i in range(4):
            link.send(make_packet("f", i))
        sim.run()
        # 4 x 1ms busy over a 0.008 s window.
        assert monitor.utilization(0.008) == pytest.approx(0.5)
        assert monitor.utilization(0) == 0.0

    def test_tracer_receives_drop_records(self):
        sim = Simulator()
        tracer = Tracer()
        link = Link(sim, 8e6, 0.01, DropTailQueue(1))
        link.connect(lambda p: None)
        LinkMonitor(sim, link, tracer=tracer, sample_queue=False)
        for i in range(4):
            link.send(make_packet("f", i))
        assert len(tracer.select(category="drop")) == 2

    def test_chained_drop_hooks_preserved(self):
        sim = Simulator()
        link = Link(sim, 8e6, 0.01, DropTailQueue(1))
        link.connect(lambda p: None)
        first = []
        link.queue.drop_hook = lambda p: first.append(p.seq)
        monitor = LinkMonitor(sim, link, sample_queue=False)
        for i in range(3):
            link.send(make_packet("f", i))
        assert first  # the original hook still fires
        assert monitor.drop_count == len(first)


class TestFlowMonitor:
    def test_arrivals_accumulate_per_flow(self):
        monitor = FlowMonitor()
        monitor.on_packet(1.0, make_packet("a", 0, 500))
        monitor.on_packet(2.0, make_packet("a", 1, 500))
        monitor.on_packet(1.5, make_packet("b", 0, 700))
        assert monitor.bytes_by_flow == {"a": 1000, "b": 700}
        assert monitor.packets_by_flow == {"a": 2, "b": 1}
        assert monitor.flows() == ["a", "b"]

    def test_throughput_window(self):
        monitor = FlowMonitor()
        monitor.on_packet(1.0, make_packet("a", 0, 1000))
        monitor.on_packet(3.0, make_packet("a", 1, 1000))
        assert monitor.throughput_bps("a", 0.0, 2.0) == pytest.approx(4000.0)
        assert monitor.throughput_bps("a", 0.0, 4.0) == pytest.approx(4000.0)

    def test_throughput_unknown_flow_zero(self):
        assert FlowMonitor().throughput_bps("nope", 0, 1) == 0.0

    def test_throughput_invalid_window(self):
        with pytest.raises(ValueError):
            FlowMonitor().throughput_bps("a", 2.0, 1.0)

    def test_tracer_integration(self):
        tracer = Tracer()
        monitor = FlowMonitor(tracer=tracer)
        monitor.on_packet(1.0, make_packet("a"))
        records = tracer.select(category="recv", source="a")
        assert len(records) == 1
        assert records[0].value == 1000


class TestMonitorModeEquivalence:
    """Columnar and legacy accumulators must report identical values."""

    def _fill_flow(self, monitor):
        monitor.on_packet(1.0, make_packet("a", 0, 500))
        monitor.on_packet(2.0, make_packet("a", 1, 700))
        monitor.on_packet(2.5, make_packet("b", 0, 300))
        monitor.on_packet(4.0, make_packet("a", 2, 900))

    def test_flow_monitor_modes_agree(self):
        fast = FlowMonitor(columnar=True)
        legacy = FlowMonitor(columnar=False)
        self._fill_flow(fast)
        self._fill_flow(legacy)
        assert dict(fast.bytes_by_flow) == dict(legacy.bytes_by_flow)
        assert dict(fast.packets_by_flow) == dict(legacy.packets_by_flow)
        assert fast.flows() == legacy.flows()
        for fid in fast.flows():
            assert fast.arrivals[fid] == legacy.arrivals[fid]
            assert fast.arrival_series(fid) == legacy.arrival_series(fid)
        for window in ((0.0, 2.0), (1.0, 2.5), (0.5, 10.0), (5.0, 6.0)):
            for fid in ("a", "b", "missing"):
                assert fast.throughput_bps(fid, *window) == legacy.throughput_bps(
                    fid, *window
                )

    def test_flow_monitor_window_boundaries_inclusive(self):
        monitor = FlowMonitor()
        monitor.on_packet(1.0, make_packet("a", 0, 1000))
        monitor.on_packet(3.0, make_packet("a", 1, 1000))
        # Both endpoints inclusive, matching the legacy scan semantics.
        assert monitor.throughput_bps("a", 1.0, 3.0) == pytest.approx(8000.0)
        assert monitor.throughput_bps("a", 1.0 + 1e-12, 3.0 - 1e-12) == (
            pytest.approx(0.0)
        )

    def test_link_monitor_modes_agree(self):
        data = {}
        for columnar in (True, False):
            sim = Simulator()
            link = Link(sim, 8e6, 0.01, DropTailQueue(2))
            link.connect(lambda p: None)
            monitor = LinkMonitor(sim, link, sample_queue=True, columnar=columnar)
            for i in range(6):
                link.send(make_packet("f", i))
            sim.run()
            data[columnar] = (
                monitor.queue_samples,
                monitor.drops,
                monitor.drop_count,
                monitor.queue_series(t_min=0.0005),
                monitor.queue_series(t_min=0.0, t_max=0.001),
            )
        assert data[True] == data[False]

    def test_arrivals_view_is_mapping_like(self):
        monitor = FlowMonitor()
        self._fill_flow(monitor)
        view = monitor.arrivals
        assert set(view) == {"a", "b"}
        assert len(view) == 2
        assert view.get("missing", []) == []
        assert view["b"] == [(2.5, 300)]
        with pytest.raises(KeyError):
            view["missing"]
