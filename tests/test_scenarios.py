"""Tests for the scenarios subsystem: spec/registry, hashing, cache
round-trips, and sweep determinism (serial vs parallel)."""

import json

import pytest

from repro.scenarios import (
    ResultCache,
    ScenarioSpec,
    SweepRunner,
    get_scenario,
    list_scenarios,
    register_scenario,
    run_scenario,
)
from repro.scenarios.spec import _REGISTRY


@register_scenario("test_echo")
def _echo_scenario(spec):
    """Deterministic toy scenario: echoes back derived spec values."""
    return {
        "seed": spec.seed,
        "duration": spec.duration,
        "x": spec.extra.get("x", 0),
        "product": spec.seed * spec.extra.get("x", 0),
    }


class TestSpec:
    def test_round_trips_through_dict(self):
        spec = ScenarioSpec(
            "mixed_dumbbell",
            topology={"bandwidth_bps": 2e6},
            flows={"n_tfrc": 2, "n_tcp": 2},
            queue={"type": "red"},
            loss={"model": "none"},
            seed=7,
            duration=30.0,
            extra={"measure_fraction": 0.5},
        )
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError):
            ScenarioSpec.from_dict({"scenario": "x", "bogus": 1})
        with pytest.raises(ValueError):
            ScenarioSpec.from_dict({"duration": 1.0})

    def test_hash_stable_and_sensitive(self):
        spec = ScenarioSpec("test_echo", seed=1, extra={"x": 3})
        same = ScenarioSpec.from_dict(spec.to_dict())
        assert spec.spec_hash() == same.spec_hash()
        assert spec.spec_hash() != spec.override({"seed": 2}).spec_hash()
        assert spec.spec_hash() != spec.override({"extra.x": 4}).spec_hash()

    def test_hash_survives_json_round_trip(self):
        spec = ScenarioSpec("test_echo", topology={"bw": 1.5e6}, seed=3)
        reloaded = ScenarioSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert reloaded.spec_hash() == spec.spec_hash()

    def test_override_dotted_paths(self):
        spec = ScenarioSpec("test_echo", topology={"bw": 1e6, "delay": 0.1})
        new = spec.override({"topology.bw": 2e6, "seed": 9, "duration": 5.0})
        assert new.topology == {"bw": 2e6, "delay": 0.1}
        assert (new.seed, new.duration) == (9, 5.0)
        # the original is untouched
        assert spec.topology["bw"] == 1e6 and spec.seed == 0

    def test_override_rejects_non_mapping_intermediates(self):
        # descending through the scalar top-level `seed` field would turn
        # it into a dict and corrupt derive_seed/hashing downstream
        spec = ScenarioSpec("test_echo", topology={"a": 5})
        with pytest.raises(ValueError, match="'seed'"):
            spec.override({"seed.x": 1})
        with pytest.raises(ValueError, match="topology.a"):
            spec.override({"topology.a.b": 1})
        # untouched paths stay intact after the rejected override
        assert spec.topology == {"a": 5} and spec.seed == 0

    def test_override_still_creates_missing_intermediates(self):
        spec = ScenarioSpec("test_echo")
        new = spec.override({"extra.foo.bar": 1})
        assert new.extra == {"foo": {"bar": 1}}

    def test_derive_seed_deterministic_and_distinct(self):
        spec = ScenarioSpec("test_echo", seed=5)
        a = spec.derive_seed({"flows.total": 8})
        assert a == spec.derive_seed({"flows.total": 8})
        assert a != spec.derive_seed({"flows.total": 16})
        assert a != ScenarioSpec("test_echo", seed=6).derive_seed(
            {"flows.total": 8}
        )


class TestRegistry:
    def test_known_scenarios_registered(self):
        # builders register these at import time
        assert {"mixed_dumbbell", "tfrc_lossy_path"} <= set(list_scenarios())

    def test_figure_scenarios_registered_on_import(self):
        from repro.experiments import (  # noqa: F401
            fig02_loss_interval,
            fig03_oscillation,
            fig06_fairness_grid,
            fig08_smoothness,
            fig09_equivalence,
            fig11_onoff,
            fig14_queue_dynamics,
            fig18_predictor,
            fig19_increase,
            fig20_halving,
            internet,
        )

        assert {
            "fig02_loss_interval",
            "fig03_pipe",
            "fig06_cell",
            "fig08_smoothness",
            "fig09_replication",
            "fig11_onoff",
            "fig14_queue_dynamics",
            "fig18_trace",
            "fig19_increase",
            "fig20_halving",
            "internet_path",
        } <= set(list_scenarios())

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError):
            get_scenario("no_such_scenario")

    def test_reregistering_same_function_is_idempotent(self):
        register_scenario("test_echo")(_echo_scenario)
        assert get_scenario("test_echo") is _echo_scenario

    def test_name_collision_rejected(self):
        with pytest.raises(ValueError):
            @register_scenario("test_echo")
            def _other(spec):  # pragma: no cover - never runs
                return {}

        assert _REGISTRY["test_echo"] is _echo_scenario

    def test_run_scenario_dispatches(self):
        result = run_scenario(ScenarioSpec("test_echo", seed=4, extra={"x": 2}))
        assert result == {"seed": 4, "duration": 60.0, "x": 2, "product": 8}


class TestCache:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        spec = ScenarioSpec("test_echo", seed=1, extra={"x": 2})
        assert cache.get(spec) is None
        cache.put(spec, {"value": 42})
        assert cache.get(spec) == {"value": 42}
        assert len(cache) == 1
        entries = cache.entries()
        assert entries[0]["spec"]["scenario"] == "test_echo"

    def test_different_specs_do_not_collide(self, tmp_path):
        cache = ResultCache(tmp_path)
        a = ScenarioSpec("test_echo", seed=1)
        b = ScenarioSpec("test_echo", seed=2)
        cache.put(a, {"who": "a"})
        cache.put(b, {"who": "b"})
        assert cache.get(a) == {"who": "a"}
        assert cache.get(b) == {"who": "b"}

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = ScenarioSpec("test_echo", seed=1)
        path = cache.put(spec, {"value": 1})
        path.write_text("{not json", encoding="utf-8")
        assert cache.get(spec) is None

    def test_failed_put_leaves_no_tmp_file(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = ScenarioSpec("test_echo", seed=1)
        with pytest.raises(TypeError):
            cache.put(spec, {"bad": object()})  # not JSON-serializable
        assert list(tmp_path.iterdir()) == []
        assert cache.get(spec) is None

    def test_nan_and_infinity_results_rejected(self, tmp_path):
        # canonical_json hashes specs with allow_nan=False; entries must be
        # strict JSON too, not silently non-portable
        cache = ResultCache(tmp_path)
        spec = ScenarioSpec("test_echo", seed=1)
        with pytest.raises(ValueError, match="NaN"):
            cache.put(spec, {"metric": float("nan")})
        with pytest.raises(ValueError):
            cache.put(spec, {"metric": float("inf")})
        assert list(tmp_path.iterdir()) == []
        assert cache.get(spec) is None


class TestSweepRunner:
    BASE = ScenarioSpec("test_echo", seed=3)
    GRID = {"extra.x": [1, 2, 3], "seed": [10, 20]}

    def test_expansion_order_and_overrides(self):
        cells = SweepRunner(self.BASE, self.GRID).cells()
        assert [c.overrides for c in cells] == [
            {"extra.x": 1, "seed": 10}, {"extra.x": 1, "seed": 20},
            {"extra.x": 2, "seed": 10}, {"extra.x": 2, "seed": 20},
            {"extra.x": 3, "seed": 10}, {"extra.x": 3, "seed": 20},
        ]
        assert len({c.key for c in cells}) == len(cells)

    def test_serial_matches_parallel(self):
        serial = SweepRunner(self.BASE, self.GRID, parallel=1).run()
        parallel = SweepRunner(self.BASE, self.GRID, parallel=3).run()
        assert [c.result for c in serial.cells] == [
            c.result for c in parallel.cells
        ]

    def test_zipped_axis_varies_paths_together(self):
        cells = SweepRunner(
            self.BASE, {("extra.x", "seed"): [(1, 10), (2, 20)]}
        ).cells()
        assert [c.overrides for c in cells] == [
            {"extra.x": 1, "seed": 10}, {"extra.x": 2, "seed": 20},
        ]
        assert [c.spec.seed for c in cells] == [10, 20]

    def test_zipped_axis_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            SweepRunner(
                self.BASE, {("extra.x", "seed"): [(1, 10, 99)]}
            ).cells()

    def test_shared_seed_mode_keeps_base_seed(self):
        cells = SweepRunner(self.BASE, {"extra.x": [1, 2]}).cells()
        assert [c.spec.seed for c in cells] == [3, 3]

    def test_derived_seed_mode_is_deterministic(self):
        first = SweepRunner(
            self.BASE, {"extra.x": [1, 2]}, seed_mode="derived"
        ).cells()
        second = SweepRunner(
            self.BASE, {"extra.x": [1, 2]}, seed_mode="derived"
        ).cells()
        assert [c.spec.seed for c in first] == [c.spec.seed for c in second]
        assert first[0].spec.seed != first[1].spec.seed
        # explicit seed axes are respected verbatim
        explicit = SweepRunner(
            self.BASE, {"seed": [7, 8]}, seed_mode="derived"
        ).cells()
        assert [c.spec.seed for c in explicit] == [7, 8]

    def test_cache_hits_skip_execution(self, tmp_path):
        cache_dir = str(tmp_path / "sweep")
        first = SweepRunner(self.BASE, self.GRID, cache_dir=cache_dir).run()
        assert first.cache_hits == 0
        second = SweepRunner(self.BASE, self.GRID, cache_dir=cache_dir).run()
        assert second.cache_hits == len(second.cells)
        assert [c.result for c in first.cells] == [
            c.result for c in second.cells
        ]

    def test_progress_callback_sees_every_cell(self):
        seen = []
        SweepRunner(
            self.BASE, {"extra.x": [1, 2, 3]},
            progress=lambda done, total, cell: seen.append((done, total)),
        ).run()
        assert seen == [(1, 3), (2, 3), (3, 3)]

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            SweepRunner(self.BASE, parallel=0)
        with pytest.raises(ValueError):
            SweepRunner(self.BASE, seed_mode="weird")
        with pytest.raises(ValueError):
            SweepRunner(self.BASE, {"extra.x": []})
        with pytest.raises(KeyError):
            SweepRunner(ScenarioSpec("missing_scenario")).run()


class TestDumbbellSweepDeterminism:
    """End-to-end: a real (tiny) simulation sweep is reproducible and
    identical across serial and process-parallel execution."""

    BASE = ScenarioSpec(
        "mixed_dumbbell",
        topology={"bandwidth_bps": 1.5e6},
        flows={"n_tfrc": 1, "n_tcp": 1},
        queue={"type": "red"},
        duration=8.0,
        seed=11,
    )
    GRID = {"queue.type": ["red", "droptail"]}

    @pytest.mark.slow
    def test_same_seeds_identical_results_serial_vs_parallel(self):
        serial = SweepRunner(self.BASE, self.GRID, parallel=1).run()
        parallel = SweepRunner(self.BASE, self.GRID, parallel=2).run()
        assert [c.result for c in serial.cells] == [
            c.result for c in parallel.cells
        ]
        rerun = SweepRunner(self.BASE, self.GRID, parallel=1).run()
        assert [c.result for c in serial.cells] == [
            c.result for c in rerun.cells
        ]

    @pytest.mark.slow
    def test_cache_round_trip_preserves_results(self, tmp_path):
        cache_dir = str(tmp_path)
        live = SweepRunner(self.BASE, self.GRID, cache_dir=cache_dir).run()
        cached = SweepRunner(self.BASE, self.GRID, cache_dir=cache_dir).run()
        assert cached.cache_hits == 2
        # JSON round trip preserves every metric bit-for-bit
        assert [c.result for c in live.cells] == [c.result for c in cached.cells]
