"""FastTimer semantics: re-arm, cancel races, stale-generation discard,
and randomized equivalence with the legacy Timer."""

import random

import pytest

from repro.sim.engine import SimulationError, Simulator
from repro.sim.process import FastTimer, Timer, make_timer


class TestFastTimerSemantics:
    def test_fires_after_interval(self):
        sim = Simulator()
        fired = []
        timer = FastTimer(sim, lambda: fired.append(sim.now))
        timer.start(1.5)
        sim.run()
        assert fired == [1.5]

    def test_rearm_while_pending_pushes_back(self):
        sim = Simulator()
        fired = []
        timer = FastTimer(sim, lambda: fired.append(sim.now))
        timer.start(1.0)
        sim.schedule(0.5, lambda: timer.restart(1.0))
        sim.run()
        # The superseded t=1.0 entry self-discards; only t=1.5 fires.
        assert fired == [1.5]

    def test_rearm_earlier_fires_once_at_new_deadline(self):
        sim = Simulator()
        fired = []
        timer = FastTimer(sim, lambda: fired.append(sim.now))
        timer.start(2.0)
        sim.schedule(0.1, lambda: timer.start(0.5))
        sim.run()
        # New deadline 0.6 fires; the stale entry at 2.0 pops as a no-op.
        assert fired == [0.6]

    def test_cancel_then_fire_race(self):
        """Cancelling after the entry is queued must suppress the fire."""
        sim = Simulator()
        fired = []
        timer = FastTimer(sim, lambda: fired.append(sim.now))
        timer.start(1.0)
        # Cancel an instant before the deadline: the heap entry still pops
        # at t=1.0 but must discard itself.
        sim.schedule(0.999999, timer.cancel)
        sim.run()
        assert fired == []
        assert not timer.pending

    def test_cancel_then_restart_only_new_generation_fires(self):
        sim = Simulator()
        fired = []
        timer = FastTimer(sim, lambda: fired.append(sim.now))
        timer.start(1.0)
        timer.cancel()
        timer.start(3.0)
        sim.run()
        assert fired == [3.0]

    def test_stale_generation_discard_counts_no_fire(self):
        """Many superseded armings leave entries that all self-discard."""
        sim = Simulator()
        fired = []
        timer = FastTimer(sim, lambda: fired.append(sim.now))
        for i in range(10):
            timer.start(1.0 + i * 0.1)  # each start supersedes the last
        sim.run()
        assert fired == [1.9]
        # All 10 entries were popped (9 stale + 1 live).
        assert sim.events_processed == 10

    def test_pending_and_expiry(self):
        sim = Simulator()
        timer = FastTimer(sim, lambda: None)
        assert not timer.pending
        assert timer.expiry is None
        timer.start(2.0)
        assert timer.pending
        assert timer.expiry == 2.0
        sim.run()
        assert not timer.pending
        assert timer.expiry is None

    def test_can_rearm_from_callback(self):
        sim = Simulator()
        fired = []

        def on_fire():
            fired.append(sim.now)
            if len(fired) < 3:
                timer.start(1.0)

        timer = FastTimer(sim, on_fire)
        timer.start(1.0)
        sim.run()
        assert fired == [1.0, 2.0, 3.0]

    def test_cancel_idempotent(self):
        sim = Simulator()
        timer = FastTimer(sim, lambda: None)
        timer.cancel()
        timer.start(1.0)
        timer.cancel()
        timer.cancel()
        sim.run()
        assert not timer.pending

    def test_negative_interval_rejected(self):
        sim = Simulator()
        timer = FastTimer(sim, lambda: None)
        with pytest.raises(SimulationError):
            timer.start(-0.5)

    @pytest.mark.parametrize("bad", [float("inf"), float("nan")])
    def test_nonfinite_interval_leaves_timer_disarmed(self, bad):
        """Error-path parity with Timer: a failed start() disarms both
        implementations (Timer cancels first, then raises)."""
        for fast in (True, False):
            sim = Simulator()
            fired = []
            timer = make_timer(sim, lambda: fired.append(sim.now), fast)
            timer.start(1.0)  # a live arming the failed start supersedes
            with pytest.raises(SimulationError):
                timer.start(bad)
            assert not timer.pending, f"fast={fast}"
            assert timer.expiry is None, f"fast={fast}"
            sim.run()
            assert fired == [], f"fast={fast}"

    def test_make_timer_selects_implementation(self):
        sim = Simulator()
        assert isinstance(make_timer(sim, lambda: None, fast=True), FastTimer)
        assert isinstance(make_timer(sim, lambda: None, fast=False), Timer)


def _fuzz_ops(seed, n_ops=300):
    """A deterministic random schedule of timer operations."""
    rng = random.Random(seed)
    ops = []
    t = 0.0
    for _ in range(n_ops):
        t += rng.random() * 0.4
        if rng.random() < 0.25:
            ops.append((t, "cancel", 0.0))
        else:
            ops.append((t, "start", rng.random() * 0.7))
    return ops


def _drive(fast, seed):
    """Apply one op schedule to a timer; return exact fire times."""
    sim = Simulator()
    fired = []

    def on_fire():
        fired.append(sim.now)
        # Deterministic re-arm from inside the callback: exercises the
        # fire -> restart pattern protocol endpoints use.
        if len(fired) % 3 == 0:
            timer.start(0.21)

    timer = make_timer(sim, on_fire, fast)
    for when, op, interval in _fuzz_ops(seed):
        if op == "start":
            sim.schedule(when, timer.start, interval)
        else:
            sim.schedule(when, timer.cancel)
    sim.run()
    return fired


class TestFastTimerEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_randomized_schedule_matches_legacy_timer(self, seed):
        """Under a random start/cancel/restart schedule (with callback
        re-arms), FastTimer fires at exactly the legacy Timer's times."""
        assert _drive(True, seed) == _drive(False, seed)

    def test_endpoint_sequence_parity(self):
        """Both implementations consume one scheduler sequence number per
        start, so interleaved same-time events keep their relative order."""
        for fast in (False, True):
            sim = Simulator()
            order = []
            timer = make_timer(sim, lambda: order.append("timer"), fast)
            timer.start(1.0)
            sim.schedule(1.0, lambda: order.append("event"))
            sim.run()
            # The timer armed first, so its (earlier) sequence number wins
            # the same-time tie on either implementation.
            assert order == ["timer", "event"], f"fast={fast}"
