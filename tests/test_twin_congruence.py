"""Cross-validation of the ``twin.*`` static gate against reality.

Two directions, per the twin-congruence contract:

* **The analyzer catches drift** -- a copy of the real RED module with a
  planted operand reorder (or an ``np.sum`` substitution) in its vector
  twin must produce ``twin.op-divergence`` / ``twin.nonassoc-reduction``.

* **The proof is not vacuous** -- every ``trace``-mode twin pair in the
  live tree (the ones the analyzer certifies congruent) is fuzzed here
  over seeded inputs and must be *bit-identical*, element for element.
  The fuzz registry is keyed by the collected pairs, so adding a new
  trace pair without a fuzz case fails the coverage assertion, and a
  ``runtime``-mode registration must be on the known list (with its fuzz
  living in tests/test_vector_kernel.py for the batch kernel).
"""

import importlib
from pathlib import Path

import numpy as np
import pytest

from repro.analysis.audit.engine import run_audit
from repro.analysis.audit.rules_twins import collect_repo_twins

REPO_ROOT = Path(__file__).resolve().parents[1]
SEED = 20260808

#: runtime-mode pairs whose congruence is enforced by dedicated fuzz
#: suites instead of a static trace proof.
KNOWN_RUNTIME_PAIRS = {
    # masked bisection + whole-batch kernel: grid-equivalence fuzz in
    # tests/test_vector_kernel.py
    "repro.core.equations.invert_response_vec",
    "repro.sim.vector_kernel.run_cells_vector",
}


def _import_dotted(dotted: str):
    parts = dotted.split(".")
    for split in range(len(parts), 0, -1):
        try:
            module = importlib.import_module(".".join(parts[:split]))
        except ImportError:
            continue
        obj = module
        for attr in parts[split:]:
            obj = getattr(obj, attr)
        return obj
    raise ImportError(f"cannot import {dotted}")


def _assert_bits_equal(scalar_value, vector_value, context: str) -> None:
    a = np.float64(scalar_value)
    b = np.float64(vector_value)
    assert a.tobytes() == b.tobytes(), (
        f"{context}: scalar {a!r} != vector {b!r} (bitwise)"
    )


# --------------------------------------------------------------- fuzz cases


def _fuzz_red_drop_probability(scalar, vector):
    from repro.net.redmath import RedParams

    rng = np.random.default_rng(SEED)
    cases = [
        RedParams(min_thresh=5.0, max_thresh=15.0),
        RedParams(min_thresh=5.0, max_thresh=15.0, gentle=False),
        RedParams(min_thresh=2.0, max_thresh=7.0, max_p=0.07, weight=0.01),
    ]
    for params in cases:
        # span every zone: below min, linear, gentle, forced, plus the
        # exact thresholds; and an all-below-max batch for the fast path.
        avg = np.concatenate([
            rng.uniform(0.0, 2.5 * params.max_thresh, size=256),
            np.array([
                params.min_thresh, params.max_thresh,
                params.two_max_thresh, 0.0,
            ]),
        ])
        out = vector(params, avg)
        for i in range(avg.size):
            _assert_bits_equal(
                scalar(params, float(avg[i])), out[i],
                f"red_drop_probability(avg={avg[i]!r})",
            )
        fast = rng.uniform(0.0, params.max_thresh * 0.999, size=64)
        fast_out = vector(params, fast)
        for i in range(fast.size):
            _assert_bits_equal(
                scalar(params, float(fast[i])), fast_out[i],
                f"red_drop_probability fast path (avg={fast[i]!r})",
            )


def _fuzz_red_uniformized(scalar, vector):
    rng = np.random.default_rng(SEED + 1)
    p_b = rng.uniform(0.0, 0.3, size=256)
    count = rng.integers(-1, 60, size=256).astype(np.float64)
    # force some denominators to and past zero
    p_b[:16] = 0.5
    count[:16] = np.arange(16, dtype=np.float64)
    out = vector(p_b, count)
    for i in range(p_b.size):
        _assert_bits_equal(
            scalar(float(p_b[i]), float(count[i])), out[i],
            f"red_uniformized(p_b={p_b[i]!r}, count={count[i]!r})",
        )


def _fuzz_red_ewma(scalar, vector):
    rng = np.random.default_rng(SEED + 2)
    for weight in (0.002, 0.25, 1.0):
        avg = rng.uniform(0.0, 40.0, size=256)
        qlen = rng.uniform(0.0, 60.0, size=256)
        out = vector(weight, avg, qlen)
        for i in range(avg.size):
            _assert_bits_equal(
                scalar(weight, float(avg[i]), float(qlen[i])), out[i],
                f"red_ewma(w={weight}, avg={avg[i]!r})",
            )


def _fuzz_tcp_response_rate(scalar, vector):
    rng = np.random.default_rng(SEED + 3)
    rtt = rng.uniform(0.01, 0.5, size=256)
    p = 10.0 ** rng.uniform(-9.0, 0.0, size=256)  # spans below P_MIN too
    t_rto = 4.0 * rtt
    for packet_size in (500, 1460):
        out = vector(float(packet_size), rtt, p, t_rto)
        for i in range(rtt.size):
            _assert_bits_equal(
                scalar(packet_size, float(rtt[i]), float(p[i]),
                       float(t_rto[i])),
                out[i],
                f"tcp_response_rate(rtt={rtt[i]!r}, p={p[i]!r})",
            )


def _fuzz_wali_fold_average(scalar, vector):
    rng = np.random.default_rng(SEED + 4)
    weighted = rng.uniform(0.0, 1.0, size=(64, 8))
    values = rng.uniform(1.0, 500.0, size=(64, 8))
    weighted[:8, 4:] = 0.0  # partially filled histories
    weighted[8:12, :] = 0.0  # weightless lanes take the 0.0 branch
    with np.errstate(invalid="ignore", divide="ignore"):
        out = vector(weighted, values)
    for i in range(weighted.shape[0]):
        _assert_bits_equal(
            scalar(list(weighted[i]), list(values[i])), out[i],
            f"wali_fold_average(row={i})",
        )


FUZZERS = {
    "repro.net.redmath.red_drop_probability_vec": _fuzz_red_drop_probability,
    "repro.net.redmath.red_uniformized_vec": _fuzz_red_uniformized,
    "repro.net.redmath.red_ewma_vec": _fuzz_red_ewma,
    "repro.core.equations.tcp_response_rate_vec": _fuzz_tcp_response_rate,
    "repro.sim.vector_kernel._WaliLanes._fold_average": (
        _fuzz_wali_fold_average
    ),
}


def _live_pairs():
    pairs, problems = collect_repo_twins(REPO_ROOT)
    assert problems == [], [p.detail for p in problems]
    return pairs


class TestLiveTwinRegistry:
    def test_trace_pairs_each_have_a_fuzzer(self):
        """Every statically certified pair must also be fuzzed here."""
        trace = {p.vector_dotted for p in _live_pairs() if p.mode == "trace"}
        assert trace == set(FUZZERS), (
            "trace-mode twin registry and fuzz registry drifted; add a "
            "fuzz case for each new pair"
        )

    def test_runtime_pairs_are_the_known_set(self):
        """A [runtime] registration must name its fuzz coverage here."""
        runtime = {
            p.vector_dotted for p in _live_pairs() if p.mode == "runtime"
        }
        assert runtime == KNOWN_RUNTIME_PAIRS


class TestLiveTwinCongruence:
    @pytest.mark.parametrize("vector_dotted", sorted(FUZZERS))
    def test_congruence_clean_pair_is_bit_identical(self, vector_dotted):
        pair = next(
            p for p in _live_pairs() if p.vector_dotted == vector_dotted
        )
        scalar = _import_dotted(pair.scalar)
        vector = _import_dotted(vector_dotted)
        FUZZERS[vector_dotted](scalar, vector)


class TestPlantedDrift:
    def _copy_redmath(self, tmp_path: Path, mutate) -> Path:
        root = tmp_path
        (root / "src/repro/net").mkdir(parents=True)
        text = (REPO_ROOT / "src/repro/net/redmath.py").read_text(
            encoding="utf-8"
        )
        mutated = mutate(text)
        assert mutated != text, "planting failed: pattern not found"
        (root / "src/repro/net/redmath.py").write_text(
            mutated, encoding="utf-8"
        )
        return root

    def test_operand_reorder_in_real_red_twin_is_flagged(self, tmp_path):
        root = self._copy_redmath(
            tmp_path,
            lambda text: text.replace(
                "    mid = (avg - params.min_thresh)"
                " / params.thresh_range * params.max_p",
                "    mid = (avg - params.min_thresh)"
                " * params.max_p / params.thresh_range",
            ),
        )
        findings = [f for f in run_audit(root) if f.rule == "twin.op-divergence"]
        assert findings, "planted operand reorder was not flagged"
        assert "red_drop_probability" in findings[0].detail

    def test_np_sum_substitution_in_ewma_twin_is_flagged(self, tmp_path):
        # the ewma bodies are textually identical, so anchor the
        # replacement on the vec def's docstring to mutate only the twin
        root = self._copy_redmath(
            tmp_path,
            lambda text: text.replace(
                '    """Element-wise :func:`red_ewma` over vectors of'
                ' averages/occupancies."""\n'
                "    return avg + weight * (qlen - avg)\n",
                '    """Element-wise :func:`red_ewma` over vectors of'
                ' averages/occupancies."""\n'
                "    return np.sum(np.stack([avg, weight * (qlen - avg)]),"
                " axis=0)\n",
            ),
        )
        rules = {f.rule for f in run_audit(root)}
        assert "twin.op-divergence" in rules
        assert "twin.nonassoc-reduction" in rules

    def test_unmutated_copy_is_clean(self, tmp_path):
        root = self._copy_redmath(tmp_path, lambda text: text + "\n# tail\n")
        assert [f.rule for f in run_audit(root)] == []
