"""Tests for the TcpFlow / TfrcFlow wiring helpers."""

import pytest

from repro.core.agent import TfrcFlow
from repro.net.path import LossyPath
from repro.sim.engine import Simulator
from repro.tcp.flow import TcpFlow


def make_paths(sim, rtt=0.1):
    return LossyPath(sim, delay=rtt / 2), LossyPath(sim, delay=rtt / 2)


class TestTcpFlow:
    def test_start_at_schedules_future_start(self):
        sim = Simulator()
        fwd, rev = make_paths(sim)
        flow = TcpFlow(sim, "t", fwd, rev)
        flow.start(at=2.0)
        sim.run(until=1.9)
        assert flow.sender.packets_sent == 0
        sim.run(until=3.0)
        assert flow.sender.packets_sent > 0

    def test_stop_halts_sending(self):
        sim = Simulator()
        fwd, rev = make_paths(sim)
        flow = TcpFlow(sim, "t", fwd, rev)
        flow.start()
        sim.run(until=1.0)
        flow.stop()
        count = flow.sender.packets_sent
        sim.run(until=5.0)
        assert flow.sender.packets_sent == count

    def test_cwnd_property(self):
        sim = Simulator()
        fwd, rev = make_paths(sim)
        flow = TcpFlow(sim, "t", fwd, rev)
        assert flow.cwnd == flow.sender.cwnd

    def test_variant_forwarded(self):
        sim = Simulator()
        fwd, rev = make_paths(sim)
        flow = TcpFlow(sim, "t", fwd, rev, variant="tahoe")
        assert flow.sender.variant == "tahoe"

    def test_on_data_callback_sees_arrivals(self):
        sim = Simulator()
        fwd, rev = make_paths(sim)
        seen = []
        flow = TcpFlow(sim, "t", fwd, rev, on_data=lambda t, p: seen.append(p.seq))
        flow.start()
        sim.run(until=1.0)
        assert seen and seen == sorted(seen)


class TestTfrcFlowWiring:
    def test_receiver_kwargs_split_from_sender_kwargs(self):
        sim = Simulator()
        fwd, rev = make_paths(sim)
        flow = TfrcFlow(
            sim, "f", fwd, rev,
            ali_n=16, history_discounting=False, reorder_tolerance=5,
            rtt_ewma_weight=0.3,
        )
        assert flow.receiver.intervals.n == 16
        assert not flow.receiver.intervals.discounting
        assert flow.receiver.detector.reorder_tolerance == 5
        assert flow.sender.rtt_ewma_weight == 0.3

    def test_rate_and_loss_properties(self):
        sim = Simulator()
        fwd, rev = make_paths(sim)
        flow = TfrcFlow(sim, "f", fwd, rev)
        flow.start()
        sim.run(until=2.0)
        assert flow.rate == flow.sender.rate
        assert flow.loss_event_rate == flow.receiver.loss_event_rate()

    def test_stop_cancels_both_sides(self):
        sim = Simulator()
        fwd, rev = make_paths(sim)
        flow = TfrcFlow(sim, "f", fwd, rev)
        flow.start()
        sim.run(until=1.0)
        flow.stop()
        sent = flow.sender.packets_sent
        sim.run(until=5.0)
        assert flow.sender.packets_sent == sent

    def test_feedback_loop_established(self):
        sim = Simulator()
        fwd, rev = make_paths(sim)
        flow = TfrcFlow(sim, "f", fwd, rev)
        flow.start()
        sim.run(until=3.0)
        assert flow.sender.feedback_received > 0
        assert flow.sender.srtt is not None
