"""Tests for the multicast TFRC building blocks (paper section 6)."""

import numpy as np
import pytest

from repro.multicast import (
    FeedbackSuppression,
    MulticastReceiver,
    MulticastTfrcSession,
)
from repro.net.path import periodic_loss
from repro.sim.engine import Simulator


class TestSuppressionTimer:
    def make(self, sim, rate, rng_seed=0, **kwargs):
        fired = []
        suppression = FeedbackSuppression(
            sim,
            send_report=lambda: fired.append(sim.now),
            rate_fn=lambda: rate,
            rng=np.random.default_rng(rng_seed),
            **kwargs,
        )
        return suppression, fired

    def test_fires_within_round(self):
        sim = Simulator()
        suppression, fired = self.make(sim, rate=1e5, round_duration=1.0)
        suppression.start_round()
        sim.run(until=1.1)
        assert len(fired) == 1
        assert 0.0 < fired[0] <= 1.0

    def test_low_rate_fires_before_high_rate(self):
        """The bias must order receivers by rate, reliably."""
        for seed in range(5):
            sim = Simulator()
            low, low_fired = self.make(sim, rate=1e4, rng_seed=seed)
            high, high_fired = self.make(sim, rate=5e6, rng_seed=seed + 100)
            low.start_round()
            high.start_round()
            sim.run(until=1.1)
            assert low_fired and high_fired
            assert low_fired[0] < high_fired[0]

    def test_heard_lower_report_suppresses(self):
        sim = Simulator()
        suppression, fired = self.make(sim, rate=1e6)
        suppression.start_round()
        suppression.on_heard_report(reported_rate=1e4)  # someone worse off
        sim.run(until=1.1)
        assert fired == []

    def test_heard_higher_report_does_not_suppress_bottleneck(self):
        sim = Simulator()
        suppression, fired = self.make(sim, rate=1e4)
        suppression.start_round()
        suppression.on_heard_report(reported_rate=1e6)
        sim.run(until=1.1)
        assert len(fired) == 1

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            FeedbackSuppression(
                sim, lambda: None, lambda: 1.0,
                rng=np.random.default_rng(0), round_duration=0,
            )
        with pytest.raises(ValueError):
            FeedbackSuppression(
                sim, lambda: None, lambda: 1.0,
                rng=np.random.default_rng(0), suppress_factor=0.5,
            )


class TestSession:
    def make_session(self, sim, loss_periods, delay=0.05, **kwargs):
        specs = [
            (delay, periodic_loss(period) if period else None)
            for period in loss_periods
        ]
        return MulticastTfrcSession(sim, specs, **kwargs)

    def test_rate_tracks_worst_receiver(self):
        """The sender must converge to (roughly) the rate the lossiest
        receiver's control equation allows."""
        sim = Simulator()
        session = self.make_session(sim, [None, 400, 25])  # rx2 is worst
        session.start()
        sim.run(until=60.0)
        worst = session.bottleneck_receiver()
        assert worst.receiver_id.endswith("rx2")
        assert session.sender.rate == pytest.approx(
            worst.calculated_rate(), rel=0.5
        )

    def test_feedback_scales_sublinearly(self):
        """Suppression: reports per round must not grow linearly with N.

        All receivers share the same loss pattern (the hardest case: equal
        rates give the timers no deterministic separation), so duplicates
        come only from firings inside the suppression propagation window.
        """
        totals = {}
        for n in (4, 16):
            sim = Simulator()
            session = self.make_session(sim, [100] * n, seed=1, round_duration=2.0)
            session.start()
            sim.run(until=60.0)
            totals[n] = session.total_reports
        # 4x receivers must yield clearly fewer than 4x reports.
        assert totals[16] < totals[4] * 3.0

    def test_all_receivers_get_data(self):
        sim = Simulator()
        session = self.make_session(sim, [None, None, 200])
        session.start()
        sim.run(until=20.0)
        for receiver in session.receivers:
            assert receiver.packets_received > 10

    def test_slow_start_ends_on_first_loss_report(self):
        sim = Simulator()
        session = self.make_session(sim, [50])
        session.start()
        sim.run(until=30.0)
        assert not session.sender.in_slow_start

    def test_no_feedback_halves_rate(self):
        """If every report path is cut, the sender decays its rate."""
        sim = Simulator()
        session = self.make_session(sim, [200])
        session.start()
        sim.run(until=20.0)
        rate_before = session.sender.rate
        for up in session._up_paths:
            up.loss_model = lambda p, now: True  # blackout
        sim.run(until=40.0)
        assert session.sender.rate < rate_before / 2

    def test_conservatism_shades_rate_down(self):
        sim_a = Simulator()
        plain = self.make_session(sim_a, [100], conservatism=1.0)
        plain.start()
        sim_a.run(until=40.0)
        sim_b = Simulator()
        shaded = self.make_session(sim_b, [100], conservatism=2.0)
        shaded.start()
        sim_b.run(until=40.0)
        assert shaded.sender.rate < plain.sender.rate

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError):
            MulticastTfrcSession(Simulator(), [])

    def test_receiver_conservatism_validation(self):
        with pytest.raises(ValueError):
            MulticastReceiver(
                Simulator(), "r", lambda p: None,
                rng=np.random.default_rng(0), conservatism=0.5,
            )
