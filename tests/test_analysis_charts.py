"""Tests for the plain-text chart renderers."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.charts import histogram, line_chart, sparkline


class TestLineChart:
    def test_renders_points_and_legend(self):
        out = line_chart(
            {"tcp": [(0, 0), (1, 1)], "tfrc": [(0, 1), (1, 0)]},
            title="demo", x_label="time", y_label="rate",
        )
        assert "demo" in out
        assert "* tcp" in out
        assert "o tfrc" in out
        assert "rate vs time" in out
        assert "*" in out and "o" in out

    def test_empty_series_reports_no_data(self):
        assert "(no data)" in line_chart({"a": []})

    def test_nan_points_filtered(self):
        out = line_chart({"a": [(0, math.nan), (1, 2), (2, 3)]})
        assert "(no data)" not in out

    def test_constant_series_does_not_divide_by_zero(self):
        out = line_chart({"flat": [(0, 5), (1, 5), (2, 5)]})
        assert "*" in out

    def test_log_x_axis(self):
        out = line_chart({"a": [(0.1, 1), (1, 2), (10, 3)]}, log_x=True)
        assert "0.1" in out and "10" in out

    def test_log_x_with_no_positive_points(self):
        out = line_chart({"a": [(0, 1), (-1, 2)]}, log_x=True)
        assert "no data" in out

    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            line_chart({"a": [(0, 0)]}, width=4)

    def test_axis_labels_show_bounds(self):
        out = line_chart({"a": [(2.0, 10.0), (4.0, 30.0)]})
        assert "10" in out and "30" in out
        assert "2" in out and "4" in out

    @given(points=st.lists(
        st.tuples(st.floats(-1e6, 1e6), st.floats(-1e6, 1e6)),
        min_size=1, max_size=50,
    ))
    def test_arbitrary_finite_points_never_crash(self, points):
        out = line_chart({"s": points})
        assert isinstance(out, str) and out

    def test_grid_width_respected(self):
        out = line_chart({"a": [(0, 0), (1, 1)]}, width=40, height=8)
        plot_rows = [ln for ln in out.splitlines() if "|" in ln]
        assert len(plot_rows) == 8
        for row in plot_rows:
            assert len(row.split("|", 1)[1]) == 40


class TestHistogram:
    def test_bars_scale_to_peak(self):
        out = histogram(["a", "b"], [1.0, 2.0], width=10)
        lines = out.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            histogram(["a"], [1.0, 2.0])

    def test_empty_reports_no_data(self):
        assert "(no data)" in histogram([], [], title="t")

    def test_zero_values_render_empty_bars(self):
        out = histogram(["z"], [0.0])
        assert "#" not in out

    def test_nan_marked(self):
        out = histogram(["n", "v"], [math.nan, 1.0])
        assert "nan" in out

    def test_unit_suffix(self):
        out = histogram(["x"], [3.0], unit="%")
        assert "3%" in out


class TestSparkline:
    def test_monotone_series_uses_rising_levels(self):
        line = sparkline([1, 2, 3, 4, 5, 6, 7, 8])
        assert line[0] == "▁"
        assert line[-1] == "█"

    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant_series(self):
        line = sparkline([5, 5, 5])
        assert len(line) == 3 and len(set(line)) == 1

    def test_nan_renders_space(self):
        assert " " in sparkline([1.0, math.nan, 2.0])

    def test_all_nan(self):
        assert sparkline([math.nan, math.nan]) == "  "

    def test_width_condenses(self):
        line = sparkline(list(range(100)), width=10)
        assert len(line) == 10

    @given(values=st.lists(st.floats(allow_nan=False, allow_infinity=False,
                                     min_value=-1e9, max_value=1e9),
                           max_size=100))
    def test_length_matches_input(self, values):
        assert len(sparkline(values)) == len(values)
