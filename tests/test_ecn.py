"""Tests for the ECN extension (paper section 7 names ECN as future work).

With ECN enabled, RED marks ECN-capable packets under early congestion
instead of dropping them; the TFRC receiver treats marks as congestion
signals (grouped into loss events like drops), so the sender throttles
without suffering packet loss.
"""

import numpy as np
import pytest

from repro.core import TfrcFlow
from repro.core.loss_events import LossEventDetector
from repro.net.link import Link
from repro.net.monitor import FlowMonitor
from repro.net.packet import Packet
from repro.net.path import LossyPath
from repro.net.queues import REDQueue
from repro.sim.engine import Simulator


def make_red(ecn, capacity=100, weight=1.0):
    return REDQueue(
        capacity, min_thresh=5, max_thresh=20, max_p=0.5,
        weight=weight, rng=np.random.default_rng(0), ecn=ecn,
    )


class TestRedEcnMarking:
    def test_capable_packets_marked_not_dropped(self):
        queue = make_red(ecn=True)
        accepted = 0
        for i in range(60):
            packet = Packet("f", i, 1000, ecn_capable=True)
            if queue.enqueue(packet, 0.0):
                accepted += 1
        assert queue.ecn_marks > 0
        assert queue.early_drops == 0
        assert accepted == queue.enqueued

    def test_incapable_packets_still_dropped(self):
        queue = make_red(ecn=True)
        for i in range(60):
            queue.enqueue(Packet("f", i, 1000, ecn_capable=False), 0.0)
        assert queue.early_drops > 0
        assert queue.ecn_marks == 0

    def test_forced_drops_still_drop_capable_packets(self):
        queue = make_red(ecn=True, capacity=10)
        for i in range(30):
            queue.enqueue(Packet("f", i, 1000, ecn_capable=True), 0.0)
        assert queue.forced_drops > 0

    def test_marks_disabled_by_default(self):
        queue = make_red(ecn=False)
        for i in range(60):
            queue.enqueue(Packet("f", i, 1000, ecn_capable=True), 0.0)
        assert queue.ecn_marks == 0
        assert queue.early_drops > 0

    def test_mark_sets_flag_on_packet(self):
        queue = make_red(ecn=True)
        marked = []
        for i in range(60):
            packet = Packet("f", i, 1000, ecn_capable=True)
            queue.enqueue(packet, 0.0)
            if packet.ecn_marked:
                marked.append(packet)
        assert marked
        while True:
            out = queue.dequeue(0.0)
            if out is None:
                break
            # Marked packets stay in the stream (delivered, not dropped).
        assert queue.dropped == queue.forced_drops


class TestDetectorMarks:
    def test_mark_starts_loss_event(self):
        det = LossEventDetector(rtt_fn=lambda: 0.1)
        for seq in range(10):
            det.on_arrival(seq, seq * 0.01)
        event = det.on_congestion_mark(10, 0.5)
        assert event is not None
        assert len(det.events) == 1
        assert det.packets_lost == 0  # a mark is not a loss

    def test_marks_within_rtt_merge(self):
        det = LossEventDetector(rtt_fn=lambda: 0.1)
        det.on_arrival(0, 0.0)
        first = det.on_congestion_mark(1, 0.2)
        second = det.on_congestion_mark(2, 0.25)  # within one RTT
        assert first is not None and second is None
        assert len(det.events) == 1

    def test_marks_and_losses_share_grouping(self):
        det = LossEventDetector(rtt_fn=lambda: 0.05)
        det.on_arrival(0, 0.0)
        det.on_congestion_mark(1, 0.1)
        # A real loss 1 RTT later starts a fresh event.
        for seq, t in [(2, 0.30), (4, 0.32), (5, 0.33), (6, 0.34)]:
            det.on_arrival(seq, t)
        assert len(det.events) == 2


class TestEndToEndEcn:
    def _run(self, ecn, duration=40.0):
        sim = Simulator()
        queue = REDQueue(
            100, min_thresh=10, max_thresh=50, max_p=0.1, weight=0.002,
            rng=np.random.default_rng(2), ecn=ecn,
        )
        link = Link(sim, 2e6, 0.04, queue)
        monitor = FlowMonitor()

        class LinkPort:
            def send(self, packet):
                return link.send(packet)

            def connect(self, receiver):
                link.connect(receiver)

        reverse = LossyPath(sim, delay=0.04)
        flow = TfrcFlow(
            sim, "f", LinkPort(), reverse,
            on_data=monitor.on_packet, ecn=ecn,
        )
        flow.start()
        sim.run(until=duration)
        return flow, queue, monitor

    def test_ecn_flow_throttles_with_near_zero_loss(self):
        flow, queue, monitor = self._run(ecn=True)
        # The flow saturated the 2 Mb/s link and received congestion signals.
        assert queue.ecn_marks > 0
        assert flow.receiver.loss_event_rate() > 0
        # Early drops were avoided entirely for the capable flow.
        assert queue.early_drops == 0
        # Rate settled near the link capacity, not collapsed.
        throughput = monitor.throughput_bps("f", 20, 40)
        assert throughput > 0.5 * 2e6

    def test_ecn_and_drop_flows_reach_similar_rates(self):
        with_ecn, q_ecn, mon_ecn = self._run(ecn=True)
        without, q_drop, mon_drop = self._run(ecn=False)
        rate_ecn = mon_ecn.throughput_bps("f", 20, 40)
        rate_drop = mon_drop.throughput_bps("f", 20, 40)
        assert rate_ecn == pytest.approx(rate_drop, rel=0.4)
        # But the ECN flow lost (essentially) nothing to early drops.
        assert q_ecn.early_drops == 0
        assert q_drop.early_drops > 0
