"""Tests for the self-similarity diagnostics and the ON/OFF aggregate.

The key substrate check: the Pareto ON/OFF fleet really produces
self-similar aggregate traffic (H approx (3 - alpha)/2), because the
paper's section 4.1.3 scenario depends on that property.
"""

import numpy as np
import pytest

from repro.analysis.selfsimilarity import (
    aggregate_series,
    expected_hurst_for_pareto,
    hurst_variance_time,
    variance_time_points,
)
from repro.analysis.timeseries import arrivals_to_rate_series
from repro.sim.engine import Simulator
from repro.traffic.onoff import OnOffSource


class CollectingSink:
    def __init__(self):
        self.arrivals = []

    def send(self, packet):
        self.arrivals.append((packet.sent_at, packet.size))
        return True

    def connect(self, receiver):
        pass


class TestAggregation:
    def test_block_means(self):
        assert aggregate_series([1, 2, 3, 4], 2).tolist() == [1.5, 3.5]

    def test_truncates_partial_block(self):
        assert aggregate_series([1, 2, 3, 4, 5], 2).tolist() == [1.5, 3.5]

    def test_validation(self):
        with pytest.raises(ValueError):
            aggregate_series([1, 2], 0)
        with pytest.raises(ValueError):
            aggregate_series([1], 2)

    def test_variance_points_decreasing_for_iid(self):
        rng = np.random.default_rng(0)
        series = rng.normal(0, 1, 4096)
        points = variance_time_points(series, [1, 4, 16, 64])
        variances = [v for _, v in points]
        assert variances == sorted(variances, reverse=True)


class TestHurstEstimator:
    def test_iid_noise_is_half(self):
        rng = np.random.default_rng(1)
        series = rng.normal(10, 1, 16384)
        assert hurst_variance_time(series) == pytest.approx(0.5, abs=0.1)

    def test_persistent_process_above_half(self):
        """A random walk's increments integrated -> strongly persistent."""
        rng = np.random.default_rng(2)
        # Fractional-Gaussian-ish surrogate: cumulative sum has H ~ 1.
        walk = np.cumsum(rng.normal(0, 1, 16384))
        assert hurst_variance_time(walk) > 0.8

    def test_expected_hurst_formula(self):
        assert expected_hurst_for_pareto(1.5) == pytest.approx(0.75)
        with pytest.raises(ValueError):
            expected_hurst_for_pareto(2.5)


class TestOnOffAggregateIsSelfSimilar:
    def test_hurst_of_onoff_fleet(self):
        """The substrate check: superposed Pareto ON/OFF sources at alpha=1.5
        must show H well above 0.5 (theory: 0.75), unlike Poisson traffic."""
        sim = Simulator()
        sink = CollectingSink()
        rng = np.random.default_rng(7)
        sources = [
            OnOffSource(sim, f"o{i}", sink, rng=rng, peak_rate_bps=500e3)
            for i in range(20)
        ]
        for source in sources:
            source.start(at=float(rng.uniform(0, 5)))
        sim.run(until=600.0)
        series = arrivals_to_rate_series(sink.arrivals, 50.0, 600.0, 0.1)
        hurst = hurst_variance_time(series, levels=(1, 2, 4, 8, 16, 32, 64, 128))
        assert hurst > 0.6  # clearly long-range dependent

    def test_poisson_control_is_not(self):
        """Control experiment: Poisson arrivals at the same mean rate."""
        rng = np.random.default_rng(8)
        t, arrivals = 0.0, []
        while t < 600.0:
            t += rng.exponential(1.0 / 400.0)
            arrivals.append((t, 1000))
        series = arrivals_to_rate_series(arrivals, 50.0, 600.0, 0.1)
        hurst = hurst_variance_time(series, levels=(1, 2, 4, 8, 16, 32, 64, 128))
        assert hurst < 0.65
