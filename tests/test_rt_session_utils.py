"""Unit tests for loopback-session helpers (no sockets involved)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.rt.session import LoopbackResult, _time_averaged_rate


def make_result(**overrides):
    base = dict(
        duration=1.0, datagrams_sent=10, datagrams_received=8,
        datagrams_dropped=2, feedback_received=3, loss_event_rate=0.01,
        mean_rate_bps=1000.0, final_rate_bps=900.0, srtt=0.04,
    )
    base.update(overrides)
    return LoopbackResult(**base)


class TestTimeAveragedRate:
    def test_empty_history(self):
        assert _time_averaged_rate([], end_time=10.0) == 0.0

    def test_single_step_held_to_end(self):
        assert _time_averaged_rate([(2.0, 100.0)], end_time=4.0) == 100.0

    def test_stepwise_average(self):
        history = [(0.0, 100.0), (1.0, 300.0)]  # 1s at 100, 1s at 300
        assert _time_averaged_rate(history, end_time=2.0) == 200.0

    def test_unequal_segments_weighted_by_duration(self):
        history = [(0.0, 100.0), (3.0, 500.0)]  # 3s at 100, 1s at 500
        assert _time_averaged_rate(history, end_time=4.0) == 200.0

    def test_end_before_last_change_does_not_go_negative(self):
        history = [(0.0, 100.0), (5.0, 900.0)]
        value = _time_averaged_rate(history, end_time=5.0)
        assert value == pytest.approx(100.0)

    def test_zero_span_returns_last_rate(self):
        assert _time_averaged_rate([(3.0, 42.0)], end_time=3.0) == 42.0

    @given(rates=st.lists(st.floats(min_value=0, max_value=1e9), min_size=1,
                          max_size=20))
    def test_average_bounded_by_min_and_max(self, rates):
        history = [(float(i), r) for i, r in enumerate(rates)]
        value = _time_averaged_rate(history, end_time=float(len(rates)))
        assert min(rates) - 1e-6 <= value <= max(rates) + 1e-6


class TestLoopbackResult:
    def test_delivery_ratio(self):
        assert make_result().delivery_ratio == pytest.approx(0.8)

    def test_delivery_ratio_no_traffic(self):
        assert make_result(datagrams_sent=0).delivery_ratio == 0.0
