"""Tests for the experiment harness: each figure module runs (at reduced
scale) and produces results with the paper's qualitative shape."""

import math

import numpy as np
import pytest

from repro.experiments import (
    fig02_loss_interval,
    fig03_oscillation,
    fig05_loss_event_fraction,
    fig19_increase,
    fig20_halving,
)
from repro.experiments import internet
from repro.analysis.predictor import predictor_errors

pytestmark = pytest.mark.slow


class TestFig02:
    @pytest.fixture(scope="class")
    def result(self):
        return fig02_loss_interval.run(duration=16.0)

    def test_estimate_stable_during_constant_loss(self, result):
        stable = result.series_between(4.0, 5.5, "estimated_interval")
        assert stable
        assert (max(stable) - min(stable)) / np.mean(stable) < 0.2

    def test_p_tracks_each_phase(self, result):
        p_high = result.series_between(7.5, 9.0, "loss_event_rate")
        assert np.mean(p_high) == pytest.approx(0.1, rel=0.5)

    def test_rate_reduced_rapidly_on_congestion(self, result):
        summary = fig02_loss_interval.summarize(result)
        assert summary["rate_drop_factor"] > 2.0

    def test_rate_recovers_smoothly_without_steps(self, result):
        """After t=9 the rate increases without step jumps (paper: 'no step
        increases even when older loss intervals are excluded')."""
        pairs = [
            (t, r)
            for t, r in zip(result.times, result.tx_rate_bytes)
            if 10.0 <= t <= 16.0
        ]
        rates = [r for _, r in pairs]
        jumps = [(b - a) / a for a, b in zip(rates, rates[1:]) if a > 0]
        assert jumps
        assert max(jumps) < 0.25  # no >25% step in 0.1 s


class TestFig03:
    def test_adjustment_damps_oscillation(self):
        plain = fig03_oscillation.run_one(
            buffer_packets=8, interpacket_adjustment=False, duration=40.0
        )
        damped = fig03_oscillation.run_one(
            buffer_packets=8, interpacket_adjustment=True, duration=40.0
        )
        assert damped[1] < plain[1]  # CoV falls

    def test_throughput_not_sacrificed(self):
        plain = fig03_oscillation.run_one(8, False, duration=40.0)
        damped = fig03_oscillation.run_one(8, True, duration=40.0)
        assert damped[2] > 0.5 * plain[2]

    def test_sweep_collects_all_buffers(self):
        result = fig03_oscillation.run(buffer_sizes=(4, 16), duration=20.0)
        assert set(result.cov_by_buffer) == {4, 16}


class TestFig05:
    @pytest.fixture(scope="class")
    def result(self):
        return fig05_loss_event_fraction.run(
            p_loss_values=np.linspace(0.01, 0.25, 13), monte_carlo=False
        )

    def test_event_fraction_never_exceeds_loss_fraction(self, result):
        for multiplier, curve in result.p_event_by_multiplier.items():
            for p_loss, p_event in zip(result.p_loss_values, curve):
                assert p_event <= p_loss + 1e-12

    def test_moderate_gap_for_equation_flow(self, result):
        """Paper: at most ~10% difference for the 1x flow."""
        assert result.max_relative_gap(1.0) < 0.15

    def test_faster_flow_larger_gap(self, result):
        assert result.max_relative_gap(2.0) >= result.max_relative_gap(0.5)

    def test_small_gap_at_high_loss(self, result):
        """At high loss the window shrinks to ~1 pkt/RTT: the curves merge."""
        curve = result.p_event_by_multiplier[1.0]
        last_gap = (result.p_loss_values[-1] - curve[-1]) / result.p_loss_values[-1]
        assert last_gap < 0.05


class TestFig19:
    @pytest.fixture(scope="class")
    def result(self):
        return fig19_increase.run(duration=13.0)

    def test_no_increase_until_interval_exceeds_average(self, result):
        """Paper: the rate stays flat until ~0.75 s after loss stops."""
        start = result.increase_start_time()
        assert result.loss_stop_time + 0.3 <= start <= result.loss_stop_time + 1.5

    def test_normal_increase_near_paper_bound(self, result):
        start = result.increase_start_time()
        slope = result.mean_slope(start, start + 0.7)
        assert 0.05 < slope < 0.20  # paper: ~0.12-0.14

    def test_discounted_increase_bounded(self, result):
        slope = result.mean_slope(
            result.loss_stop_time + 2.0, result.times[-1]
        )
        assert slope < 0.40  # paper: <= ~0.28-0.31 with Eq. (1)

    def test_discounting_accelerates_recovery(self):
        with_disc = fig19_increase.run(duration=13.0, history_discounting=True)
        without = fig19_increase.run(duration=13.0, history_discounting=False)
        assert with_disc.rate_pkts_per_rtt[-1] > without.rate_pkts_per_rtt[-1]

    def test_analytic_bounds_exposed(self):
        bounds = fig19_increase.analytic_bounds()
        assert bounds["delta_normal_simple"] == pytest.approx(0.12, abs=0.01)
        assert bounds["delta_discounted_simple"] == pytest.approx(0.28, abs=0.02)


class TestFig20:
    @pytest.fixture(scope="class")
    def result(self):
        return fig20_halving.run()

    def test_rate_halves_within_three_to_eight_rtts(self, result):
        n = result.rtts_to_halve()
        assert n is not None
        assert 3.0 <= n <= 8.5  # paper: 3..8, typically 5

    def test_appendix_lower_bound_five_at_low_drop_rates(self):
        """A.2: at low drop rates, at least ~5 RTTs are required."""
        halving = fig20_halving.run(initial_period=200)
        n = halving.rtts_to_halve()
        assert n is not None and n >= 4.5

    def test_sweep_within_paper_band(self):
        # Paper: 3-8 RTTs across drop rates.  We measure up to ~9.5 at
        # p = 0.04 (recorded in EXPERIMENTS.md); assert the same decade.
        sweep = fig20_halving.run_sweep(initial_periods=(100, 25, 10))
        defined = sweep.defined()
        assert len(defined) == 3
        for _, n in defined:
            assert 2.5 <= n <= 10.0


class TestInternetPaths:
    def test_profiles_cover_paper_paths(self):
        # The paper's five named paths, plus the deliberately overloaded
        # Nokia variant added for the section 4.3 overload-regime study.
        assert set(internet.PATHS) >= {
            "ucl", "mannheim", "umass_linux", "umass_solaris", "nokia"
        }
        assert "nokia_overloaded" in internet.PATHS

    def test_ucl_path_reasonable_fairness(self):
        result = internet.run_path(internet.PATHS["ucl"], duration=40.0)
        mean_tcp = np.mean(result.tcp_throughputs_bps)
        assert result.tfrc_throughput_bps > 0.2 * mean_tcp
        assert result.tfrc_throughput_bps < 5.0 * mean_tcp

    def test_tfrc_smoother_on_well_behaved_path(self):
        result = internet.run_path(internet.PATHS["umass_linux"], duration=40.0)
        tau = max(result.cov_tfrc_by_tau)
        assert result.cov_tfrc_by_tau[tau] <= result.cov_tcp_by_tau[tau] + 0.25


class TestPredictorMethodology:
    def test_errors_finite_on_synthetic_trace(self):
        rng = np.random.default_rng(0)
        trace = rng.exponential(100.0, size=200).tolist()
        for history in (2, 8, 32):
            mean_err, std_err = predictor_errors(trace, history, decreasing=True)
            assert math.isfinite(mean_err) and mean_err >= 0
            assert math.isfinite(std_err)
