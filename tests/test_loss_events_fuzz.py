"""Property/fuzz tests for the loss-event detector.

A simple reference model is checked against the production detector across
randomly generated arrival patterns (losses, bursts, reordering).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.loss_events import LossEventDetector


def deliver_pattern(detector, delivered, spacing=0.01, start=0.0):
    """Feed a list of sequence numbers (in arrival order) at fixed spacing."""
    t = start
    for seq in delivered:
        detector.on_arrival(seq, t)
        t += spacing
    return t


class TestAgainstReferenceCounts:
    @given(
        st.lists(st.booleans(), min_size=20, max_size=300),
        st.floats(min_value=0.001, max_value=0.2),
    )
    @settings(max_examples=80, deadline=None)
    def test_every_loss_counted_once(self, keep_mask, rtt):
        """Without reordering, the detector's loss count equals the number
        of dropped packets whose holes matured (3 later arrivals)."""
        detector = LossEventDetector(rtt_fn=lambda: rtt, reorder_tolerance=3)
        delivered = [i for i, keep in enumerate(keep_mask) if keep]
        if len(delivered) < 5:
            return
        deliver_pattern(detector, delivered)
        lost = [i for i, keep in enumerate(keep_mask) if not keep]
        matured = [
            seq
            for seq in lost
            if seq < max(delivered) and sum(1 for d in delivered if d > seq) >= 3
        ]
        assert detector.packets_lost == len(matured)

    @given(st.lists(st.booleans(), min_size=20, max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_events_never_exceed_losses(self, keep_mask):
        detector = LossEventDetector(rtt_fn=lambda: 0.05, reorder_tolerance=3)
        delivered = [i for i, keep in enumerate(keep_mask) if keep]
        if len(delivered) < 5:
            return
        deliver_pattern(detector, delivered)
        assert len(detector.events) <= max(1, detector.packets_lost)

    @given(
        st.integers(min_value=2, max_value=50),
        st.floats(min_value=0.01, max_value=0.5),
    )
    @settings(max_examples=50, deadline=None)
    def test_burst_within_rtt_is_single_event(self, burst, rtt):
        """Any contiguous burst of losses (followed by arrivals within one
        RTT) collapses into one loss event."""
        detector = LossEventDetector(rtt_fn=lambda: rtt, reorder_tolerance=3)
        delivered = list(range(10)) + list(range(10 + burst, 20 + burst))
        # Tight spacing: whole trace well inside one RTT per gap.
        deliver_pattern(detector, delivered, spacing=rtt / 100)
        assert detector.packets_lost == burst
        assert len(detector.events) == 1

    @given(st.data())
    @settings(max_examples=50, deadline=None)
    def test_reordering_never_creates_loss(self, data):
        """Arbitrary local reordering (swap adjacent arrivals) of a complete
        sequence must not declare losses, given tolerance 3."""
        n = data.draw(st.integers(min_value=10, max_value=100))
        order = list(range(n))
        swaps = data.draw(
            st.lists(st.integers(min_value=0, max_value=n - 2), max_size=20)
        )
        for index in swaps:
            order[index], order[index + 1] = order[index + 1], order[index]
        detector = LossEventDetector(rtt_fn=lambda: 0.05, reorder_tolerance=3)
        deliver_pattern(detector, order)
        assert detector.packets_lost == 0
        assert detector.events == []

    def test_three_position_reorder_tolerated(self):
        """A packet late by three positions still fills its hole in time."""
        detector = LossEventDetector(rtt_fn=lambda: 0.05, reorder_tolerance=3)
        deliver_pattern(detector, [0, 2, 3, 1, 4, 5, 6, 7])
        assert detector.packets_lost == 0

    def test_four_position_reorder_declared_then_retracted(self):
        """Beyond the tolerance a late packet is transiently counted as lost
        (TCP's 3-dupACK behaviour), but its eventual arrival retracts the
        declaration -- reordered-but-delivered packets leave no loss."""
        detector = LossEventDetector(rtt_fn=lambda: 0.05, reorder_tolerance=3)
        t = deliver_pattern(detector, [0, 2, 3, 4, 5])
        assert detector.packets_lost == 1
        assert len(detector.events) == 1
        deliver_pattern(detector, [1, 6, 7], start=t)
        assert detector.packets_lost == 0
        assert detector.events == []

    def test_retraction_keeps_event_with_surviving_losses(self):
        """Retracting one constituent of a multi-loss event keeps the event
        alive while any genuinely lost packet remains in it."""
        detector = LossEventDetector(rtt_fn=lambda: 10.0, reorder_tolerance=3)
        # Holes 1 and 2 mature together into one event; packet 1 arrives
        # late (retracted), packet 2 never does (a real loss).
        t = deliver_pattern(detector, [0, 3, 4, 5])
        assert detector.packets_lost == 2
        assert len(detector.events) == 1
        deliver_pattern(detector, [1, 6, 7], start=t)
        assert detector.packets_lost == 1
        assert len(detector.events) == 1


class TestIntervalAccounting:
    @given(
        st.lists(st.integers(min_value=5, max_value=200), min_size=2, max_size=20)
    )
    @settings(max_examples=50, deadline=None)
    def test_closed_intervals_match_gap_structure(self, interval_lengths):
        """Drop exactly one packet every `length` packets (far apart in
        time): each closed interval equals the sequence distance between
        consecutive dropped packets."""
        detector = LossEventDetector(rtt_fn=lambda: 0.0001, reorder_tolerance=1)
        seq = 0
        t = 0.0
        drop_seqs = []
        for length in interval_lengths:
            for _ in range(length - 1):
                detector.on_arrival(seq, t)
                seq += 1
                t += 1.0  # long spacing: every loss is its own event
            drop_seqs.append(seq)
            seq += 1  # dropped
        # flush with trailing arrivals
        for _ in range(3):
            detector.on_arrival(seq, t)
            seq += 1
            t += 1.0
        closed = [e.closed_interval for e in detector.events[1:]]
        expected = [b - a for a, b in zip(drop_seqs, drop_seqs[1:])]
        assert closed == expected
