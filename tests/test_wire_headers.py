"""Unit and property tests for wire headers and the Internet checksum."""

import struct

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.wire.checksum import internet_checksum, verify_checksum
from repro.wire.headers import (
    DATA_HEADER_SIZE,
    FEEDBACK_HEADER_SIZE,
    BadMagicError,
    ChecksumMismatchError,
    DataPacket,
    FeedbackPacket,
    TruncatedPacketError,
    UnsupportedVersionError,
    WireFormatError,
    decode_packet,
)

u32 = st.integers(min_value=0, max_value=0xFFFFFFFF)
u64 = st.integers(min_value=0, max_value=0xFFFFFFFFFFFFFFFF)


class TestChecksum:
    def test_known_vector(self):
        # RFC 1071 example: words 0x0001, 0xf203, 0xf4f5, 0xf6f7.
        data = bytes.fromhex("0001f203f4f5f6f7")
        assert internet_checksum(data) == ~0xDDF2 & 0xFFFF

    def test_zero_data(self):
        assert internet_checksum(b"\x00\x00") == 0xFFFF

    def test_odd_length_padded(self):
        assert internet_checksum(b"\x12") == internet_checksum(b"\x12\x00")

    @given(words=st.lists(st.integers(0, 0xFFFF), max_size=100))
    def test_verify_accepts_correct_checksum(self, words):
        # Even-length data (headers always are): appending the checksum
        # word makes the whole datagram verify.
        data = b"".join(struct.pack("!H", w) for w in words)
        datagram = data + struct.pack("!H", internet_checksum(data))
        assert verify_checksum(datagram)

    @given(data=st.binary(min_size=4, max_size=100), flip=st.integers(0, 7))
    def test_single_bit_corruption_detected(self, data, flip):
        datagram = data + struct.pack("!H", internet_checksum(data))
        corrupted = bytearray(datagram)
        corrupted[0] ^= 1 << flip
        # Ones-complement checksums detect any single-bit error.
        assert not verify_checksum(bytes(corrupted))


class TestDataPacketRoundTrip:
    def test_simple(self):
        pkt = DataPacket(flow_id=7, seq=42, send_ts_us=123456, rtt_us=80000,
                         ecn_capable=True, payload=b"hello")
        decoded = decode_packet(pkt.encode())
        assert decoded == pkt

    def test_wire_size(self):
        pkt = DataPacket(flow_id=1, seq=0, send_ts_us=0, rtt_us=0,
                         payload=b"x" * 100)
        assert len(pkt.encode()) == DATA_HEADER_SIZE + 100 == pkt.wire_size

    @given(flow_id=u32, seq=u32, ts=u64, rtt=u32, ecn=st.booleans(),
           payload=st.binary(max_size=64))
    def test_roundtrip_property(self, flow_id, seq, ts, rtt, ecn, payload):
        pkt = DataPacket(flow_id=flow_id, seq=seq, send_ts_us=ts, rtt_us=rtt,
                         ecn_capable=ecn, payload=payload)
        assert decode_packet(pkt.encode()) == pkt

    def test_rejects_out_of_range_fields(self):
        with pytest.raises(ValueError):
            DataPacket(flow_id=1 << 32, seq=0, send_ts_us=0, rtt_us=0).encode()
        with pytest.raises(ValueError):
            DataPacket(flow_id=0, seq=0, send_ts_us=-1, rtt_us=0).encode()


class TestFeedbackPacketRoundTrip:
    def test_simple(self):
        pkt = FeedbackPacket(flow_id=3, echo_seq=99, echo_ts_us=55555,
                             delay_us=1200, p=0.05, recv_rate=125000,
                             expedited=True)
        decoded = decode_packet(pkt.encode())
        assert isinstance(decoded, FeedbackPacket)
        assert decoded.echo_seq == 99
        assert decoded.recv_rate == 125000
        assert decoded.expedited
        assert abs(decoded.p - 0.05) < 1e-9

    def test_wire_size_is_40_bytes(self):
        # Matches TfrcReceiver.FEEDBACK_SIZE in the simulator.
        pkt = FeedbackPacket(flow_id=1, echo_seq=0, echo_ts_us=0,
                             delay_us=0, p=0.0, recv_rate=0)
        assert len(pkt.encode()) == FEEDBACK_HEADER_SIZE == 40

    @given(flow_id=u32, echo_seq=u32, ts=u64, delay=u32,
           p=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
           rate=u64, expedited=st.booleans())
    def test_roundtrip_property(self, flow_id, echo_seq, ts, delay, p, rate,
                                expedited):
        pkt = FeedbackPacket(flow_id=flow_id, echo_seq=echo_seq,
                             echo_ts_us=ts, delay_us=delay, p=p,
                             recv_rate=rate, expedited=expedited)
        decoded = decode_packet(pkt.encode())
        assert decoded.flow_id == flow_id
        assert decoded.echo_seq == echo_seq
        assert decoded.echo_ts_us == ts
        assert decoded.delay_us == delay
        assert decoded.recv_rate == rate
        assert decoded.expedited == expedited
        # p survives within fixed-point quantization.
        assert abs(decoded.p - p) <= 1.0 / 0xFFFFFFFF

    def test_rejects_p_outside_unit_interval(self):
        with pytest.raises(ValueError):
            FeedbackPacket(flow_id=0, echo_seq=0, echo_ts_us=0, delay_us=0,
                           p=1.5, recv_rate=0).encode()


class TestDecodeErrors:
    def good_data(self):
        return DataPacket(flow_id=1, seq=2, send_ts_us=3, rtt_us=4).encode()

    def test_truncated_common_header(self):
        with pytest.raises(TruncatedPacketError):
            decode_packet(b"TF\x01")

    def test_truncated_body(self):
        # A datagram whose checksum verifies but whose body is short: the
        # common header alone, self-checksummed, claiming type=data.
        import repro.wire.headers as hdr

        head = hdr._COMMON.pack(hdr.MAGIC, hdr.VERSION, hdr.TYPE_DATA, 0, 1)
        checksum = internet_checksum(head)
        head = hdr._COMMON.pack(hdr.MAGIC, hdr.VERSION, hdr.TYPE_DATA,
                                checksum, 1)
        with pytest.raises(TruncatedPacketError):
            decode_packet(head)

    def test_truncation_in_flight_fails_checksum(self):
        # Truncating a valid datagram corrupts it; the checksum catches it
        # before body parsing (drop either way).
        with pytest.raises((TruncatedPacketError, ChecksumMismatchError)):
            decode_packet(self.good_data()[: DATA_HEADER_SIZE - 4])

    def test_bad_magic(self):
        data = bytearray(self.good_data())
        data[0:2] = b"XX"
        with pytest.raises(BadMagicError):
            decode_packet(bytes(data))

    def test_unsupported_version(self):
        data = bytearray(self.good_data())
        data[2] = 99
        with pytest.raises(UnsupportedVersionError):
            decode_packet(bytes(data))

    def test_corrupted_payload_fails_checksum(self):
        data = bytearray(
            DataPacket(flow_id=1, seq=2, send_ts_us=3, rtt_us=4,
                       payload=b"payload").encode()
        )
        data[-1] ^= 0xFF
        with pytest.raises(ChecksumMismatchError):
            decode_packet(bytes(data))

    def test_unknown_type(self):
        data = bytearray(self.good_data())
        data[3] = 9
        # Re-checksum so only the type is wrong.
        data[4:6] = b"\x00\x00"
        checksum = internet_checksum(bytes(data))
        data[4:6] = struct.pack("!H", checksum)
        with pytest.raises(WireFormatError):
            decode_packet(bytes(data))

    @given(noise=st.binary(min_size=0, max_size=80))
    def test_random_noise_never_crashes(self, noise):
        # Arbitrary junk must raise WireFormatError, not anything else.
        try:
            decode_packet(noise)
        except WireFormatError:
            pass
