"""Unit tests for the wall-clock scheduler (timers, sockets, stop/until)."""

import socket

import pytest

from repro.rt.scheduler import RealtimeScheduler
from repro.sim.engine import SimulationError


class FakeClock:
    """Injectable monotonic clock for deterministic timer tests."""

    def __init__(self):
        self.t = 100.0  # arbitrary non-zero epoch

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


class TestTimers:
    def test_now_starts_at_zero(self):
        clock = FakeClock()
        sched = RealtimeScheduler(time_fn=clock)
        assert sched.now == 0.0
        clock.advance(1.5)
        assert sched.now == pytest.approx(1.5)

    def test_due_timers_fire_in_order(self):
        clock = FakeClock()
        sched = RealtimeScheduler(time_fn=clock)
        fired = []
        sched.schedule_in(0.2, fired.append, "b")
        sched.schedule_in(0.1, fired.append, "a")
        clock.advance(0.3)
        sched.run_once(max_wait=0.0)
        assert fired == ["a", "b"]

    def test_not_yet_due_timer_does_not_fire(self):
        clock = FakeClock()
        sched = RealtimeScheduler(time_fn=clock)
        fired = []
        sched.schedule_in(1.0, fired.append, "x")
        clock.advance(0.5)
        sched.run_once(max_wait=0.0)
        assert fired == []
        assert sched.pending_count() == 1

    def test_cancelled_timer_skipped(self):
        clock = FakeClock()
        sched = RealtimeScheduler(time_fn=clock)
        fired = []
        event = sched.schedule_in(0.1, fired.append, "x")
        event.cancel()
        clock.advance(0.2)
        sched.run_once(max_wait=0.0)
        assert fired == []
        assert sched.pending_count() == 0

    def test_priority_breaks_ties(self):
        clock = FakeClock()
        sched = RealtimeScheduler(time_fn=clock)
        fired = []
        sched.schedule(0.1, fired.append, "low", priority=1)
        sched.schedule(0.1, fired.append, "high", priority=0)
        clock.advance(0.2)
        sched.run_once(max_wait=0.0)
        assert fired == ["high", "low"]

    def test_slightly_past_schedule_accepted(self):
        # Wall clocks move while user code runs; scheduling "now - epsilon"
        # must not raise (unlike the simulator).
        clock = FakeClock()
        sched = RealtimeScheduler(time_fn=clock)
        clock.advance(1.0)
        fired = []
        sched.schedule(0.5, fired.append, "late")
        sched.run_once(max_wait=0.0)
        assert fired == ["late"]

    def test_rejects_nonfinite_and_negative_delay(self):
        sched = RealtimeScheduler(time_fn=FakeClock())
        with pytest.raises(SimulationError):
            sched.schedule(float("nan"), lambda: None)
        with pytest.raises(SimulationError):
            sched.schedule_in(-0.1, lambda: None)

    def test_run_returns_when_idle(self):
        # No sockets, no timers, no until: run() must not spin.
        sched = RealtimeScheduler()
        assert sched.run() >= 0.0

    def test_run_until_elapses(self):
        sched = RealtimeScheduler()
        end = sched.run(until=0.05)
        assert end >= 0.05

    def test_stop_from_callback(self):
        sched = RealtimeScheduler()
        sched.schedule_in(0.0, sched.stop)
        sched.schedule_in(10.0, lambda: None)  # would otherwise wait long
        end = sched.run(until=5.0)
        assert end < 1.0


class TestSockets:
    def test_reader_callback_invoked(self):
        sched = RealtimeScheduler()
        rx = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        rx.bind(("127.0.0.1", 0))
        tx = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        received = []

        def on_readable(sock):
            data, _ = sock.recvfrom(4096)
            received.append(data)
            sched.stop()

        sched.add_reader(rx, on_readable)
        tx.sendto(b"ping", rx.getsockname())
        sched.run(until=2.0)
        assert received == [b"ping"]
        sched.remove_reader(rx)
        rx.close()
        tx.close()

    def test_remove_reader_is_idempotent(self):
        sched = RealtimeScheduler()
        sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        sched.add_reader(sock, lambda s: None)
        sched.remove_reader(sock)
        sched.remove_reader(sock)
        sock.close()
