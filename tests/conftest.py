"""Shared test configuration.

Hypothesis deadlines are disabled globally: several property tests drive
whole simulations per example, and wall-clock deadlines make them flaky on
loaded CI machines without adding any correctness signal.
"""

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")
