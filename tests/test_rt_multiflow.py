"""Multi-flow real-stack tests: several TFRC flows through one proxy.

The paper's real-world experiments ran multiple flows concurrently over
shared paths (section 4.3).  These tests run two or three real TFRC flows
through a single impairment proxy into a single receiver socket
(:class:`~repro.rt.UdpTfrcReceiverMux`) and check demultiplexing,
per-flow feedback routing, and rough rate sharing on a capped pipe.
"""

import pytest

from repro.rt import (
    RealtimeScheduler,
    UdpImpairmentProxy,
    UdpTfrcReceiverMux,
    UdpTfrcSender,
    drop_every_nth_data,
)


def build_session(n_flows, loss_model=None, bandwidth_bps=None,
                  one_way_delay=0.015, packet_size=300):
    scheduler = RealtimeScheduler()
    mux = UdpTfrcReceiverMux(scheduler)
    proxy = UdpImpairmentProxy(
        scheduler, server=mux.local_address, delay=one_way_delay,
        loss_model=loss_model, bandwidth_bps=bandwidth_bps,
    )
    senders = [
        UdpTfrcSender(
            scheduler, peer=proxy.local_address, flow_id=i + 1,
            packet_size=packet_size, initial_rtt=0.05,
        )
        for i in range(n_flows)
    ]
    return scheduler, mux, proxy, senders


def teardown(mux, proxy, senders):
    for sender in senders:
        sender.close()
    proxy.close()
    mux.close()


class TestMux:
    def test_two_flows_demultiplexed(self):
        scheduler, mux, proxy, senders = build_session(
            2, loss_model=drop_every_nth_data(30)
        )
        try:
            for sender in senders:
                sender.start()
            scheduler.run(until=1.0)
            assert set(mux.flows) == {1, 2}
            for flow_id, receiver in mux.flows.items():
                assert receiver.datagrams_received > 5, flow_id
                assert receiver.feedback_sent > 0, flow_id
            # Feedback routed back to the right sender.
            for sender in senders:
                assert sender.feedback_datagrams > 0
                assert sender.malformed_datagrams == 0
        finally:
            teardown(mux, proxy, senders)

    def test_flows_share_capped_pipe(self):
        cap = 240_000.0  # bits/second through the proxy pipe
        scheduler, mux, proxy, senders = build_session(
            2, bandwidth_bps=cap
        )
        try:
            for sender in senders:
                sender.start()
            scheduler.run(until=2.5)
            received = {
                fid: r.datagrams_received for fid, r in mux.flows.items()
            }
            total_bps = sum(received.values()) * 300 * 8 / 2.5
            # The pipe bounds aggregate goodput.
            assert total_bps <= cap * 1.5
            # Neither flow is starved outright.
            assert min(received.values()) > 0
        finally:
            teardown(mux, proxy, senders)

    def test_strict_mode_rejects_unknown_flow(self):
        scheduler = RealtimeScheduler()
        mux = UdpTfrcReceiverMux(scheduler, accept_new_flows=False)
        mux.add_flow(7)
        sender = UdpTfrcSender(
            scheduler, peer=mux.local_address, flow_id=9,
            packet_size=300, initial_rtt=0.05,
        )
        try:
            sender.start()
            scheduler.run(until=0.3)
            assert 9 not in mux.flows
            assert mux.malformed_datagrams > 0
        finally:
            sender.close()
            mux.close()

    def test_add_flow_idempotent(self):
        scheduler = RealtimeScheduler()
        mux = UdpTfrcReceiverMux(scheduler)
        try:
            first = mux.add_flow(3)
            assert mux.add_flow(3) is first
        finally:
            mux.close()

    def test_proxy_routes_by_flow_id_across_clients(self):
        """Two senders behind one proxy: each gets only its own feedback."""
        scheduler, mux, proxy, senders = build_session(3)
        try:
            for sender in senders:
                sender.start()
            scheduler.run(until=0.8)
            for sender in senders:
                # Wrong-flow feedback would be counted as malformed.
                assert sender.malformed_datagrams == 0
                assert sender.feedback_datagrams > 0
        finally:
            teardown(mux, proxy, senders)


class TestReverseLoss:
    def test_feedback_blackout_triggers_no_feedback_halving(self):
        """Dropping ALL feedback: the sender's no-feedback timer must walk
        the rate down instead of letting slow start run open-loop."""
        from repro.rt import RealtimeScheduler, UdpImpairmentProxy, UdpTfrcSender
        from repro.rt.udp import UdpTfrcReceiver

        scheduler = RealtimeScheduler()
        receiver = UdpTfrcReceiver(scheduler)
        proxy = UdpImpairmentProxy(
            scheduler, server=receiver.local_address, delay=0.01,
            reverse_loss_model=lambda data, now: True,
        )
        sender = UdpTfrcSender(
            scheduler, peer=proxy.local_address,
            packet_size=300, initial_rtt=0.05,
        )
        try:
            sender.start()
            scheduler.run(until=1.2)
            assert sender.feedback_datagrams == 0
            assert receiver.feedback_sent > 0       # receiver did report
            assert proxy.dropped >= receiver.feedback_sent
            # Never got past the initial rate; halvings pulled it below.
            initial_rate = 300 / 0.05
            assert sender.core.rate <= initial_rate
        finally:
            sender.close()
            proxy.close()
            receiver.close()
