"""Tests for the related-work baseline protocols (TFRCP, RAP)."""

import numpy as np
import pytest

from repro.baselines.rap import RapFlow
from repro.baselines.tfrcp import TfrcpFlow
from repro.net.monitor import FlowMonitor
from repro.net.path import LossyPath, bernoulli_loss, periodic_loss
from repro.sim.engine import Simulator


def run_baseline(flow_cls, loss_model=None, duration=60.0, rtt=0.1, **kwargs):
    sim = Simulator()
    forward = LossyPath(sim, delay=rtt / 2, loss_model=loss_model)
    reverse = LossyPath(sim, delay=rtt / 2)
    monitor = FlowMonitor()
    flow = flow_cls(
        sim, "b", forward, reverse,
        on_data=lambda t, p: monitor.on_packet(t, p),
        **kwargs,
    )
    flow.start()
    sim.run(until=duration)
    return flow, monitor


class TestTfrcp:
    def test_rate_grows_without_loss(self):
        flow, _ = run_baseline(TfrcpFlow, duration=30.0)
        assert flow.sender.rate > 100 * 1000  # doubled many times

    def test_loss_caps_rate_near_equation(self):
        flow, _ = run_baseline(TfrcpFlow, loss_model=periodic_loss(100), duration=90.0)
        from repro.core.equations import tcp_response_rate

        sender = flow.sender
        expected = tcp_response_rate(1000, sender.srtt, 0.01, 4 * sender.srtt)
        # TFRCP measures raw loss fraction at coarse intervals; match loosely.
        assert sender.rate == pytest.approx(expected, rel=0.8)

    def test_rate_updates_only_at_interval_boundaries(self):
        flow, _ = run_baseline(
            TfrcpFlow, loss_model=periodic_loss(50), duration=21.0,
            update_interval=5.0,
        )
        times = [t for t, _ in flow.sender.rate_history[1:]]
        assert all(abs(t % 5.0) < 1e-6 or abs(t % 5.0 - 5.0) < 1e-6 for t in times)

    def test_poor_transient_response(self):
        """The paper's criticism: between updates TFRCP ignores congestion.

        Onset of heavy loss mid-interval leaves the rate unchanged until the
        next boundary.
        """
        sim = Simulator()
        heavy = {"on": False}
        forward = LossyPath(
            sim, delay=0.05,
            loss_model=lambda p, now: heavy["on"] and p.seq % 2 == 0,
        )
        reverse = LossyPath(sim, delay=0.05)
        flow = TfrcpFlow(sim, "b", forward, reverse, update_interval=5.0)
        flow.start()
        sim.run(until=11.0)  # boundaries at 5, 10
        rate_before = flow.sender.rate
        heavy["on"] = True   # congestion begins at t=11
        sim.run(until=14.5)  # still before the t=15 boundary
        assert flow.sender.rate == rate_before  # no reaction yet
        sim.run(until=15.5)
        assert flow.sender.rate < rate_before   # reacts only at the boundary

    def test_srtt_measured(self):
        flow, _ = run_baseline(TfrcpFlow, loss_model=periodic_loss(100), duration=20.0)
        assert flow.sender.srtt == pytest.approx(0.1, rel=0.1)

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            TfrcpFlow(sim, "b", LossyPath(sim, 0.1), LossyPath(sim, 0.1),
                      update_interval=0)


class TestRap:
    def test_aimd_sawtooth_under_periodic_loss(self):
        flow, _ = run_baseline(RapFlow, loss_model=periodic_loss(200), duration=60.0)
        sender = flow.sender
        assert sender.loss_events > 3
        rates = [r for _, r in sender.rate_history]
        # Multiplicative decreases present: some rate halvings recorded.
        drops = [b / a for a, b in zip(rates, rates[1:]) if b < a]
        assert drops and min(drops) == pytest.approx(0.5, abs=0.05)

    def test_additive_increase_one_packet_per_rtt(self):
        flow, _ = run_baseline(RapFlow, duration=5.0, rtt=0.1)
        sender = flow.sender
        increases = [
            (t2, r2 - r1)
            for (t1, r1), (t2, r2) in zip(sender.rate_history, sender.rate_history[1:])
            if r2 > r1
        ]
        assert increases
        per_rtt = [delta for _, delta in increases]
        # Each increase step is ~ packet_size / srtt bytes/s.
        assert np.median(per_rtt) == pytest.approx(1000 / 0.1, rel=0.2)

    def test_rate_stabilizes_under_loss(self):
        flow, monitor = run_baseline(
            RapFlow, loss_model=bernoulli_loss(0.02, np.random.default_rng(0)),
            duration=60.0,
        )
        # AIMD equilibrium: rate neither collapses nor explodes.
        rate = flow.sender.rate * 8
        assert 5e4 < rate < 5e7

    def test_no_timeout_modelling_means_higher_rate_at_heavy_loss(self):
        """RAP lacks the t_RTO term, so at heavy loss it outpaces the
        equation -- the coexistence concern the paper raises."""
        from repro.core.equations import tcp_response_rate

        flow, _ = run_baseline(RapFlow, loss_model=periodic_loss(8), duration=80.0)
        sender = flow.sender
        eq_rate = tcp_response_rate(1000, sender.srtt or 0.1, 1 / 8, 4 * (sender.srtt or 0.1))
        assert sender.rate > eq_rate

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            RapFlow(sim, "b", LossyPath(sim, 0.1), LossyPath(sim, 0.1),
                    decrease_factor=1.5)


class TestTear:
    def test_rate_grows_without_loss(self):
        from repro.baselines.tear import TearFlow

        flow, _ = run_baseline(TearFlow, duration=20.0)
        # Emulated slow start then congestion avoidance: rate well above the
        # initial 4 kB/s.
        assert flow.sender.rate > 50_000

    def test_emulated_window_halves_on_loss(self):
        from repro.baselines.tear import TearFlow

        flow, _ = run_baseline(TearFlow, loss_model=periodic_loss(50), duration=40.0)
        receiver = flow.receiver
        assert receiver.losses_detected > 0
        # The emulated window stays in the AIMD equilibrium band, far below
        # the lossless trajectory.
        assert receiver.cwnd < 200

    def test_rate_tracks_window_over_rtt(self):
        from repro.baselines.tear import TearFlow

        flow, _ = run_baseline(TearFlow, loss_model=periodic_loss(100), duration=40.0)
        receiver = flow.receiver
        expected = receiver.smoothed_cwnd * 1000 / flow.sender.srtt
        assert flow.sender.rate == pytest.approx(expected, rel=0.3)

    def test_smoother_than_emulated_window(self):
        """The EWMA translation is the point of TEAR: the reported rate
        varies less than the raw emulated window."""
        from repro.baselines.tear import TearFlow

        sim = Simulator()
        forward = LossyPath(sim, delay=0.05, loss_model=periodic_loss(80))
        reverse = LossyPath(sim, delay=0.05)
        flow = TearFlow(sim, "b", forward, reverse)
        raw, smooth = [], []

        def probe():
            raw.append(flow.receiver.cwnd)
            smooth.append(flow.receiver.smoothed_cwnd)
            if sim.now < 40.0:
                sim.schedule_in(0.1, probe)

        flow.start()
        sim.schedule_in(5.0, probe)
        sim.run(until=40.0)
        raw_cov = np.std(raw) / np.mean(raw)
        smooth_cov = np.std(smooth) / np.mean(smooth)
        assert smooth_cov < raw_cov

    def test_comparable_rate_to_tfrc_under_same_loss(self):
        """TEAR and TFRC both target the TCP-fair rate; under identical
        periodic loss their steady rates should be the same order."""
        from repro.baselines.tear import TearFlow
        from repro.core import TfrcFlow

        tear, _ = run_baseline(TearFlow, loss_model=periodic_loss(100), duration=60.0)
        tfrc, _ = run_baseline(TfrcFlow, loss_model=periodic_loss(100), duration=60.0)
        ratio = tear.sender.rate / tfrc.sender.rate
        assert 0.2 < ratio < 5.0
