"""Worker shutdown safety: a SIGTERM'd worker leaves an expirable lease
and no partial result; an in-process KeyboardInterrupt releases the lease
after the heartbeat thread stops."""

import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

import _executor_probe  # noqa: F401  (registers the "executor_probe" scenario)
from repro.scenarios import FileQueue, ResultCache, ScenarioSpec
from repro.scenarios import worker as sweep_worker
from repro.scenarios.fsck import audit

SPEC = ScenarioSpec("executor_probe", seed=11, extra={"x": 2, "sleep": 5.0})
KEY = f"{SPEC.scenario}-{SPEC.spec_hash()}"


def _enqueue(tmp_path, spec=SPEC):
    fq = FileQueue(tmp_path / "queue").ensure()
    cache = ResultCache(fq.root / "results")
    key = f"{spec.scenario}-{spec.spec_hash()}"
    fq.enqueue(
        {
            "key": key,
            "module": "_executor_probe",
            "spec": spec.to_dict(),
            "cache_dir": fq.encode_cache_dir(cache.root),
            "attempts": 0,
            "max_attempts": 3,
        }
    )
    return fq, cache, key


def _wait_for(predicate, timeout=15.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class TestSigtermMidCell:
    def test_lease_survives_and_expires_without_partial_result(self, tmp_path):
        fq, cache, key = _enqueue(tmp_path)
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.scenarios.worker",
                str(fq.root),
                "--worker-id", "victim",
                "--poll-interval", "0.05",
                "--heartbeat", "0.05",
                "--quiet",
            ],
            env=env,
        )
        try:
            claim = fq.claim_path(key)
            assert _wait_for(claim.exists), "worker never claimed the cell"

            # the lease is actively heartbeaten while the cell simulates
            first = claim.stat().st_mtime
            assert _wait_for(
                lambda: claim.exists() and claim.stat().st_mtime > first,
                timeout=5.0,
            ), "heartbeat never refreshed the lease"

            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=10) == -signal.SIGTERM
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

        # the kill left exactly the state lease reclaim is built for: the
        # claim file (now going stale) and nothing else -- no done marker,
        # no cache entry (partial or otherwise), no failure record.
        assert claim.exists()
        payload = json.loads(claim.read_text())
        assert payload["key"] == key and payload["worker"] == "victim"
        assert not fq.done_path(key).exists()
        assert len(cache) == 0
        assert fq.read_failures(key) == []

        # fsck sees only the expired lease; repair republishes the cell
        time.sleep(0.3)
        findings = audit(fq.root, lease_timeout=0.2)
        assert [f.kind for f in findings] == ["expired_lease"]
        audit(fq.root, lease_timeout=0.2, repair=True)
        assert not claim.exists()
        requeued = json.loads(fq.task_path(key).read_text())
        assert requeued["key"] == key
        assert "worker" not in requeued
        assert requeued["spec"] == SPEC.to_dict()


class TestKeyboardInterrupt:
    def test_process_one_releases_lease_and_stops_heartbeat(self, tmp_path):
        spec = ScenarioSpec(
            "executor_probe", seed=11, extra={"x": 2, "interrupt": 2}
        )
        fq, cache, key = _enqueue(tmp_path, spec)
        baseline = set(threading.enumerate())

        with pytest.raises(KeyboardInterrupt):
            sweep_worker.process_one(
                fq,
                worker_id="ctrl-c",
                heartbeat_interval=0.05,
                verbose=False,
            )

        # heartbeat thread joined (stopped *before* the release, so it
        # cannot touch a lease another worker re-claims on the same path)
        assert set(threading.enumerate()) == baseline

        # lease released cleanly: no claim left to expire, and no partial
        # result, done marker, or failure record for the interrupted cell
        assert list(fq.claims.glob("*.json")) == []
        assert not fq.done_path(key).exists()
        assert len(cache) == 0
        assert fq.read_failures(key) == []

    def test_interrupt_mid_batch_releases_every_lease(self, tmp_path):
        interrupting = ScenarioSpec(
            "executor_probe", seed=11, extra={"x": 2, "interrupt": 2}
        )
        innocent = ScenarioSpec("executor_probe", seed=11, extra={"x": 3})
        fq, cache, _ = _enqueue(tmp_path, interrupting)
        _enqueue(tmp_path, innocent)
        baseline = set(threading.enumerate())

        with pytest.raises(KeyboardInterrupt):
            # probe cells are not vector-capable, so no batch mates are
            # claimed -- but process_one is invoked exactly as the
            # batch-enabled worker would, and every claim it did take
            # must be released on the way out
            while True:
                sweep_worker.process_one(
                    fq,
                    worker_id="ctrl-c",
                    heartbeat_interval=0.05,
                    verbose=False,
                    batch_limit=8,
                )

        assert set(threading.enumerate()) == baseline
        assert list(fq.claims.glob("*.json")) == []
        assert fq.read_failures(f"{interrupting.scenario}-{interrupting.spec_hash()}") == []
