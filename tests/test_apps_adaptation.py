"""Tests for the quality-ladder adapter."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.apps.adaptation import EncodingLevel, QualityAdapter, standard_ladder

LADDER = [
    EncodingLevel(100e3, "low"),
    EncodingLevel(500e3, "mid"),
    EncodingLevel(1e6, "high"),
]


def adapter(**kwargs):
    defaults = dict(levels=LADDER, headroom=1.0, up_stability=2.0)
    defaults.update(kwargs)
    return QualityAdapter(**defaults)


class TestLevelSelection:
    def test_constant_rate_picks_highest_affordable(self):
        result = adapter().replay([600e3] * 10, tau=1.0)
        assert result.choices == [1] * 10  # "mid" fits, "high" does not
        assert result.switches == 0

    def test_headroom_reserves_margin(self):
        result = adapter(headroom=0.5).replay([600e3] * 5, tau=1.0)
        # Budget is 300 kb/s: only "low" fits.
        assert result.choices == [0] * 5

    def test_rate_below_all_levels(self):
        result = adapter().replay([50e3] * 4, tau=1.0)
        assert result.choices == [-1] * 4
        assert result.mean_bitrate_bps() == 0.0

    def test_downswitch_is_immediate(self):
        rates = [1.2e6] * 5 + [200e3] * 5
        result = adapter().replay(rates, tau=1.0)
        assert result.choices[4] == 2
        assert result.choices[5] == 0  # straight down, no hysteresis

    def test_upswitch_requires_stability(self):
        rates = [200e3] * 3 + [1.2e6] * 10
        result = adapter(up_stability=3.0).replay(rates, tau=1.0)
        # Starts at "low"; climbs one rung per 3 stable seconds.
        assert result.choices[3] == 0
        assert result.choices[5] == 1  # after 3 s of headroom
        assert max(result.choices) == 2

    def test_oscillating_rate_counts_switches(self):
        rates = [1.2e6, 200e3] * 10
        flappy = adapter(up_stability=0.0).replay(rates, tau=1.0)
        damped = adapter(up_stability=5.0).replay(rates, tau=1.0)
        assert flappy.switches > damped.switches


class TestResultMetrics:
    def test_time_per_level_sums_to_duration(self):
        rates = [600e3] * 4 + [1.2e6] * 6
        result = adapter(up_stability=2.0).replay(rates, tau=0.5)
        assert sum(result.time_per_level.values()) == pytest.approx(5.0)

    def test_switches_per_minute(self):
        result = adapter(up_stability=0.0).replay([1.2e6, 200e3] * 30, tau=1.0)
        assert result.switches_per_minute == pytest.approx(result.switches)

    def test_mean_bitrate_weighs_choices(self):
        result = adapter().replay([600e3] * 2 + [1.2e6] * 0, tau=1.0)
        assert result.mean_bitrate_bps() == pytest.approx(500e3)

    def test_empty_trace(self):
        result = adapter().replay([], tau=1.0)
        assert result.choices == []
        assert result.switches == 0
        assert result.switches_per_minute == 0.0


class TestValidation:
    def test_ladder_must_not_be_empty(self):
        with pytest.raises(ValueError):
            QualityAdapter(levels=[])

    def test_headroom_range(self):
        with pytest.raises(ValueError):
            QualityAdapter(levels=LADDER, headroom=0.0)
        with pytest.raises(ValueError):
            QualityAdapter(levels=LADDER, headroom=1.5)

    def test_negative_stability(self):
        with pytest.raises(ValueError):
            QualityAdapter(levels=LADDER, up_stability=-1.0)

    def test_nonpositive_tau(self):
        with pytest.raises(ValueError):
            adapter().replay([1e6], tau=0.0)

    def test_level_bitrate_positive(self):
        with pytest.raises(ValueError):
            EncodingLevel(0.0, "zero")

    def test_standard_ladder_is_sorted_and_positive(self):
        ladder = standard_ladder()
        rates = [level.bitrate_bps for level in ladder]
        assert rates == sorted(rates)
        assert all(r > 0 for r in rates)


class TestInvariants:
    @given(rates=st.lists(st.floats(0, 5e6), max_size=100),
           stability=st.floats(0, 10))
    def test_choices_always_within_ladder(self, rates, stability):
        result = QualityAdapter(levels=LADDER,
                                up_stability=stability).replay(rates, tau=1.0)
        assert all(-1 <= c < len(LADDER) for c in result.choices)
        assert len(result.choices) == len(rates)

    @given(rates=st.lists(st.floats(1e5, 5e6), min_size=2, max_size=50))
    def test_switch_count_bounds_choice_changes(self, rates):
        result = adapter(up_stability=0.0).replay(rates, tau=1.0)
        changes = sum(
            1 for a, b in zip(result.choices, result.choices[1:]) if a != b
        )
        assert result.switches == changes
