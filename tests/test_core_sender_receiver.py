"""TFRC sender/receiver behaviour over controlled paths."""

import pytest

from repro.core import TfrcFlow
from repro.core.equations import tcp_response_rate
from repro.core.sender import T_MBI, TfrcSender
from repro.net.path import LossyPath, bernoulli_loss, periodic_loss
from repro.net.monitor import FlowMonitor
from repro.sim.engine import Simulator

import numpy as np


def run_tfrc(loss_model=None, duration=30.0, rtt=0.1, bw=None, **kwargs):
    sim = Simulator()
    forward = LossyPath(sim, delay=rtt / 2, loss_model=loss_model, bandwidth_bps=bw)
    reverse = LossyPath(sim, delay=rtt / 2)
    monitor = FlowMonitor()
    flow = TfrcFlow(sim, "t", forward, reverse, on_data=monitor.on_packet, **kwargs)
    flow.start()
    sim.run(until=duration)
    return flow, monitor, sim


class TestSlowStart:
    def test_rate_doubles_until_loss(self):
        flow, _, _ = run_tfrc(duration=2.0)
        # From 1 pkt / 0.5 s, several doublings must have occurred.
        assert flow.sender.rate > 8 * flow.sender.packet_size
        assert flow.sender.in_slow_start

    def test_loss_terminates_slow_start(self):
        flow, _, _ = run_tfrc(loss_model=periodic_loss(100), duration=10.0)
        assert not flow.sender.in_slow_start

    def test_slow_start_capped_by_bottleneck(self):
        """The receive-rate cap limits overshoot to ~2x the link rate."""
        bw = 1e6  # 1 Mb/s
        flow, monitor, _ = run_tfrc(duration=5.0, bw=bw)
        # Once the pipe saturates, the allowed rate must not exceed ~2x
        # the bottleneck (plus one doubling step of slack).
        assert flow.sender.rate * 8 <= 2.5 * bw

    def test_history_seeded_after_first_loss(self):
        flow, _, _ = run_tfrc(loss_model=periodic_loss(200), duration=6.0)
        assert flow.receiver.intervals.loss_events >= 1
        assert flow.receiver.loss_event_rate() > 0


class TestSteadyState:
    def test_rate_tracks_equation_under_periodic_loss(self):
        period = 100
        flow, monitor, sim = run_tfrc(loss_model=periodic_loss(period), duration=60.0)
        sender = flow.sender
        p = flow.receiver.loss_event_rate()
        assert p == pytest.approx(1.0 / period, rel=0.35)
        expected = tcp_response_rate(
            sender.packet_size, sender.srtt, p, 4 * sender.srtt
        )
        assert sender.rate == pytest.approx(expected, rel=0.35)

    def test_higher_loss_means_lower_rate(self):
        high, _, _ = run_tfrc(loss_model=periodic_loss(20), duration=40.0)
        low, _, _ = run_tfrc(loss_model=periodic_loss(500), duration=40.0)
        assert high.sender.rate < low.sender.rate

    def test_srtt_converges_to_path_rtt(self):
        flow, _, _ = run_tfrc(loss_model=periodic_loss(100), duration=20.0, rtt=0.08)
        assert flow.sender.srtt == pytest.approx(0.08, rel=0.1)

    def test_bernoulli_loss_rate_measured_correctly(self):
        rng = np.random.default_rng(4)
        flow, _, _ = run_tfrc(
            loss_model=bernoulli_loss(0.02, rng), duration=60.0
        )
        # Loss-event rate <= packet loss rate, same order of magnitude.
        p = flow.receiver.loss_event_rate()
        assert 0.005 < p < 0.05

    def test_smooth_rate_under_stable_loss(self):
        """CoV of the allowed rate in steady state must be small."""
        flow, _, _ = run_tfrc(loss_model=periodic_loss(100), duration=60.0)
        rates = [r for t, r in flow.sender.rate_history if t > 30.0]
        mean = np.mean(rates)
        assert np.std(rates) / mean < 0.15


class TestNoFeedbackTimer:
    def test_rate_halves_without_feedback(self):
        """Cutting the return path must halve the rate repeatedly.

        Periodic forward loss bounds the pre-blackout rate (and keeps the
        5 s warm-up cheap to simulate).
        """
        sim = Simulator()
        forward = LossyPath(sim, delay=0.05, loss_model=periodic_loss(100))
        blackout = {"on": False}
        reverse = LossyPath(
            sim, delay=0.05,
            loss_model=lambda p, now: blackout["on"],
        )
        flow = TfrcFlow(sim, "t", forward, reverse)
        flow.start()
        sim.run(until=5.0)
        rate_before = flow.sender.rate
        blackout["on"] = True
        sim.run(until=15.0)
        assert flow.sender.rate < rate_before / 4

    def test_rate_floor_one_packet_per_64s(self):
        # The halving cadence stretches as the rate falls (the timer is
        # max(4 RTT, 2 packets), i.e. 64 s at the floor), so reaching the
        # floor from the initial rate takes ~130 simulated seconds.
        sim = Simulator()
        forward = LossyPath(sim, delay=0.05)
        reverse = LossyPath(sim, delay=0.05, loss_model=lambda p, n: True)
        flow = TfrcFlow(sim, "t", forward, reverse)
        flow.start()
        sim.run(until=250.0)
        assert flow.sender.rate == pytest.approx(flow.sender.packet_size / T_MBI)


class TestInterpacketSpacing:
    def test_adjustment_uses_sqrt_ratio(self):
        sim = Simulator()
        sender = TfrcSender(sim, "t", send_packet=lambda p: None,
                            interpacket_adjustment=True)
        sender.rate = 10_000.0
        sender._latest_rtt_sample = 0.16
        sender._sqrt_rtt_ewma = 0.2  # EWMA of sqrt(rtt): implies mean 0.04
        base = sender.packet_size / sender.rate
        assert sender._interpacket_interval() == pytest.approx(
            base * (0.16 ** 0.5) / 0.2
        )

    def test_adjustment_disabled_gives_plain_spacing(self):
        sim = Simulator()
        sender = TfrcSender(sim, "t", send_packet=lambda p: None,
                            interpacket_adjustment=False)
        sender.rate = 10_000.0
        sender._latest_rtt_sample = 0.4
        sender._sqrt_rtt_ewma = 0.1
        assert sender._interpacket_interval() == pytest.approx(
            sender.packet_size / sender.rate
        )


class TestQuiescence:
    def test_quiescent_sender_restarts_slow(self):
        sim = Simulator()
        forward = LossyPath(sim, delay=0.05, loss_model=periodic_loss(100))
        reverse = LossyPath(sim, delay=0.05)
        flow = TfrcFlow(sim, "t", forward, reverse, quiescence_aware=True)
        flow.start()
        sim.run(until=20.0)
        rate_active = flow.sender.rate
        flow.sender.set_app_active(False)
        sim.run(until=25.0)
        flow.sender.set_app_active(True)
        # Restart rate limited to ~2 packets per RTT, far below steady state.
        assert flow.sender.rate <= max(
            2.2 * flow.sender.packet_size / flow.sender.srtt,
            flow.sender.packet_size / T_MBI,
        )
        assert flow.sender.rate < rate_active

    def test_non_quiescence_aware_banks_rate(self):
        sim = Simulator()
        forward = LossyPath(sim, delay=0.05, loss_model=periodic_loss(100))
        reverse = LossyPath(sim, delay=0.05)
        flow = TfrcFlow(sim, "t", forward, reverse, quiescence_aware=False)
        flow.start()
        sim.run(until=20.0)
        rate_active = flow.sender.rate
        flow.sender.set_app_active(False)
        sim.run(until=21.0)
        flow.sender.set_app_active(True)
        # Without the extension the pre-idle rate is kept (modulo the
        # no-feedback halving that may fire during the idle second).
        assert flow.sender.rate >= rate_active / 4


class TestFeedback:
    def test_receiver_reports_once_per_rtt(self):
        # Rare loss bounds slow start (a clean uncapped pipe would double
        # forever); after it the receiver must keep reporting every RTT.
        flow, _, sim = run_tfrc(
            loss_model=periodic_loss(2000), duration=10.0, rtt=0.1
        )
        # ~10 s / 0.1 s = 100 reports expected, within a loose band
        # (expedited reports add a few).
        assert 60 <= flow.receiver.feedback_sent <= 170

    def test_expedited_feedback_on_loss(self):
        flow, _, _ = run_tfrc(loss_model=periodic_loss(50), duration=5.0)
        assert flow.receiver.feedback_sent > 30  # regular + expedited

    def test_sparser_feedback_interval_reduces_report_count(self):
        """The feedback-frequency ablation knob thins regular reports."""
        dense, _, _ = run_tfrc(loss_model=periodic_loss(2000), duration=10.0,
                               rtt=0.1)
        sparse, _, _ = run_tfrc(loss_model=periodic_loss(2000), duration=10.0,
                                rtt=0.1, feedback_interval_rtts=4.0)
        assert sparse.receiver.feedback_sent < dense.receiver.feedback_sent / 2

    def test_feedback_interval_validation(self):
        with pytest.raises(ValueError):
            run_tfrc(duration=0.1, feedback_interval_rtts=0.0)


class TestRateHistoryBounding:
    def _sender(self, **kwargs):
        from repro.core.sender import TfrcSender
        from repro.sim.engine import Simulator

        sim = Simulator()
        sender = TfrcSender(sim, "f", send_packet=lambda p: None, **kwargs)
        return sim, sender

    def test_unbounded_by_default(self):
        sim, sender = self._sender()
        for _ in range(500):
            sender._record_rate()
        assert len(sender.rate_history) == 500

    def test_decimation_bounds_growth(self):
        sim, sender = self._sender(max_rate_history=64)
        for i in range(10_000):
            sim.schedule(float(i), sender._record_rate)
        sim.run()
        # Never exceeds the cap (+1 transient before each decimation).
        assert len(sender.rate_history) <= 65
        times = [t for t, _ in sender.rate_history]
        assert times == sorted(times)
        # The first and the latest samples survive decimation.
        assert times[0] == 0.0
        assert times[-1] == 9999.0

    def test_invalid_cap_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            self._sender(max_rate_history=2)
