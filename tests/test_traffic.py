"""Unit tests for traffic generators (CBR, Pareto ON/OFF, web mice)."""

import numpy as np
import pytest

from repro.net.path import LossyPath
from repro.sim.engine import Simulator
from repro.traffic.cbr import CbrSource
from repro.traffic.onoff import OnOffSource, make_onoff_fleet, pareto_draw
from repro.traffic.web import WebTrafficSource


class Sink:
    def __init__(self):
        self.packets = []

    def send(self, packet):
        self.packets.append(packet)
        return True

    def connect(self, receiver):
        pass


class TestCbr:
    def test_rate_matches_configuration(self):
        sim = Simulator()
        sink = Sink()
        source = CbrSource(sim, "cbr", sink, rate_bps=800e3, packet_size=1000)
        source.start()
        sim.run(until=10.0)
        expected = 800e3 * 10 / 8 / 1000
        assert len(sink.packets) == pytest.approx(expected, abs=2)

    def test_start_delay(self):
        sim = Simulator()
        sink = Sink()
        source = CbrSource(sim, "cbr", sink, rate_bps=8e3)
        source.start(at=5.0)
        sim.run(until=4.9)
        assert sink.packets == []

    def test_stop(self):
        sim = Simulator()
        sink = Sink()
        source = CbrSource(sim, "cbr", sink, rate_bps=800e3)
        source.start()
        sim.schedule(1.0, source.stop)
        sim.run(until=10.0)
        assert len(sink.packets) == pytest.approx(100, abs=2)

    def test_sequence_numbers_increment(self):
        sim = Simulator()
        sink = Sink()
        CbrSource(sim, "cbr", sink, rate_bps=800e3).start()
        sim.run(until=0.1)
        seqs = [p.seq for p in sink.packets]
        assert seqs == list(range(len(seqs)))

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            CbrSource(Simulator(), "cbr", Sink(), rate_bps=0)


class TestParetoDraw:
    def test_mean_approximately_correct(self):
        rng = np.random.default_rng(0)
        draws = [pareto_draw(rng, mean=2.0, shape=1.5) for _ in range(100_000)]
        # Heavy-tailed: the sample mean converges slowly; allow 15%.
        assert np.mean(draws) == pytest.approx(2.0, rel=0.15)

    def test_minimum_is_scale(self):
        rng = np.random.default_rng(1)
        x_m = 1.0 * (1.5 - 1.0) / 1.5
        draws = [pareto_draw(rng, mean=1.0, shape=1.5) for _ in range(10_000)]
        assert min(draws) >= x_m

    def test_heavy_tail_present(self):
        rng = np.random.default_rng(2)
        draws = [pareto_draw(rng, mean=1.0, shape=1.5) for _ in range(100_000)]
        assert max(draws) > 20.0  # infinite-variance tail

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            pareto_draw(rng, mean=0, shape=1.5)
        with pytest.raises(ValueError):
            pareto_draw(rng, mean=1, shape=1.0)


class TestOnOff:
    def test_duty_cycle_about_one_third(self):
        """Mean ON 1 s / OFF 2 s -> ~1/3 of peak rate on average."""
        sim = Simulator()
        sink = Sink()
        source = OnOffSource(
            sim, "o", sink, rng=np.random.default_rng(3),
            peak_rate_bps=500e3, mean_on=1.0, mean_off=2.0,
        )
        source.start()
        sim.run(until=2000.0)
        achieved = len(sink.packets) * 1000 * 8 / 2000.0
        assert achieved == pytest.approx(500e3 / 3, rel=0.35)

    def test_no_packets_while_off(self):
        sim = Simulator()
        sink = Sink()
        source = OnOffSource(sim, "o", sink, rng=np.random.default_rng(0))
        source.start()
        sim.run(until=50.0)
        # Gaps between packets must include OFF periods >> the 16 ms spacing.
        times = sorted(p.sent_at for p in sink.packets)
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert max(gaps) > 0.5

    def test_stop_cancels_everything(self):
        sim = Simulator()
        sink = Sink()
        source = OnOffSource(sim, "o", sink, rng=np.random.default_rng(0))
        source.start()
        sim.run(until=5.0)
        source.stop()
        count = len(sink.packets)
        sim.run(until=20.0)
        assert len(sink.packets) == count

    def test_fleet_builder(self):
        sim = Simulator()
        sinks = [Sink() for _ in range(5)]
        sources = make_onoff_fleet(
            sim, 5, lambda i: sinks[i], rng=np.random.default_rng(0)
        )
        assert len(sources) == 5
        assert len({s.flow_id for s in sources}) == 5


class TestWebTraffic:
    def make_ports(self, sim):
        """Loopback port pairs: data is delivered; ACKs go back."""
        def factory(flow_id):
            forward = LossyPath(sim, delay=0.01, name=f"{flow_id}-f")
            reverse = LossyPath(sim, delay=0.01, name=f"{flow_id}-r")
            return forward, reverse
        return factory

    def test_connections_start_and_complete(self):
        sim = Simulator()
        source = WebTrafficSource(
            sim, self.make_ports(sim), rng=np.random.default_rng(0),
            arrival_rate=5.0, mean_size_packets=5.0,
        )
        source.start()
        sim.run(until=30.0)
        assert source.connections_started > 50
        assert source.connections_completed > 0.8 * source.connections_started

    def test_max_concurrent_respected(self):
        sim = Simulator()
        source = WebTrafficSource(
            sim, self.make_ports(sim), rng=np.random.default_rng(1),
            arrival_rate=100.0, mean_size_packets=50.0, max_concurrent=10,
        )
        source.start()
        worst = [0]

        def probe():
            worst[0] = max(worst[0], source.active_count)
            if sim.now < 5.0:
                sim.schedule_in(0.05, probe)

        sim.schedule_in(0.05, probe)
        sim.run(until=5.0)
        assert worst[0] <= 10

    def test_stop_halts_arrivals(self):
        sim = Simulator()
        source = WebTrafficSource(
            sim, self.make_ports(sim), rng=np.random.default_rng(2),
            arrival_rate=10.0,
        )
        source.start()
        sim.run(until=2.0)
        source.stop()
        started = source.connections_started
        sim.run(until=10.0)
        assert source.connections_started == started

    def test_validation(self):
        with pytest.raises(ValueError):
            WebTrafficSource(
                Simulator(), lambda f: (None, None),
                rng=np.random.default_rng(0), arrival_rate=0,
            )
