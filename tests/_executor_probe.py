"""Importable toy scenario for executor tests.

Lives in its own module (not the test file) so sweep workers -- pool
children and ``tfrc-sweep-worker`` subprocesses alike -- can import it by
name to populate the scenario registry.  The scenario is deterministic in
the spec, supports an execution side-channel (``extra.touch_dir``: one
uniquely named file is created per actual execution, letting tests count
how many times a cell really ran), and can be made to fail on a chosen
grid value (``extra.boom == extra.x``).
"""

import os
import uuid

from repro.scenarios import register_scenario


@register_scenario("executor_probe")
def executor_probe(spec):
    extra = spec.extra
    x = extra["x"]
    touch_dir = extra.get("touch_dir")
    if touch_dir:
        os.makedirs(touch_dir, exist_ok=True)
        marker = os.path.join(touch_dir, f"x{x}-{uuid.uuid4().hex}")
        with open(marker, "w", encoding="utf-8") as fh:
            fh.write(str(os.getpid()))
    if extra.get("boom") == x:
        raise RuntimeError(f"probe exploded on x={x}")
    boom_file = extra.get("boom_file")
    if boom_file and os.path.exists(boom_file):
        raise RuntimeError(f"probe exploded on boom_file for x={x}")
    if extra.get("interrupt") == x:
        raise KeyboardInterrupt(f"probe interrupted on x={x}")
    sleep_for = extra.get("sleep")
    if sleep_for:
        import time

        time.sleep(float(sleep_for))
    return {
        "x": x,
        "seed": spec.seed,
        "product": spec.seed * x,
        "duration": spec.duration,
    }
