"""Integration tests: full mixed-traffic dumbbell simulations (short runs).

These assert the qualitative claims of the paper's evaluation at reduced
scale so they stay fast enough for CI.
"""

import numpy as np
import pytest

from repro.analysis.cov import coefficient_of_variation
from repro.analysis.timeseries import arrivals_to_rate_series
from repro.experiments.common import (
    build_mixed_dumbbell,
    run_mixed_dumbbell,
    run_single_tfrc_on_lossy_path,
    steady_state_window,
)
from repro.net.path import periodic_loss

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def mixed_run():
    """One shared 8+8 flow run on the paper's RED bottleneck."""
    return run_mixed_dumbbell(
        duration=40.0, n_tfrc=8, n_tcp=8, bandwidth_bps=15e6,
        queue_type="red", seed=3,
    )


class TestFairness:
    def test_tcp_gets_reasonable_share(self, mixed_run):
        t0, t1 = steady_state_window(40.0, 0.5)
        tcp = np.mean(
            [mixed_run.normalized_throughput(f, t0, t1) for f in mixed_run.tcp_ids]
        )
        assert 0.5 < tcp < 1.6

    def test_tfrc_gets_reasonable_share(self, mixed_run):
        t0, t1 = steady_state_window(40.0, 0.5)
        tfrc = np.mean(
            [mixed_run.normalized_throughput(f, t0, t1) for f in mixed_run.tfrc_ids]
        )
        assert 0.5 < tfrc < 1.6

    def test_high_utilization(self, mixed_run):
        t0, t1 = steady_state_window(40.0, 0.5)
        total = sum(
            mixed_run.throughput(f, t0, t1)
            for f in mixed_run.tcp_ids + mixed_run.tfrc_ids
        )
        assert total / 15e6 > 0.80

    def test_every_flow_makes_progress(self, mixed_run):
        t0, t1 = steady_state_window(40.0, 0.5)
        for fid in mixed_run.tcp_ids + mixed_run.tfrc_ids:
            assert mixed_run.throughput(fid, t0, t1) > 0

    def test_loss_rate_moderate(self, mixed_run):
        assert 0.001 < mixed_run.link_monitor.loss_rate() < 0.15


class TestSmoothness:
    def test_tfrc_smoother_than_tcp(self, mixed_run):
        """The paper's headline: TFRC's rate varies less at sub-second
        timescales."""
        t0, t1 = steady_state_window(40.0, 0.5)
        tau = 0.5

        def mean_cov(ids):
            covs = []
            for fid in ids:
                arrivals = mixed_run.flow_monitor.arrivals.get(fid, [])
                series = arrivals_to_rate_series(arrivals, t0, t1, tau)
                covs.append(coefficient_of_variation(series))
            return np.mean(covs)

        assert mean_cov(mixed_run.tfrc_ids) < mean_cov(mixed_run.tcp_ids)


class TestScenarioBuilder:
    def test_flow_counts(self):
        result = build_mixed_dumbbell(n_tfrc=3, n_tcp=2, seed=0)
        assert len(result.tfrc_flows) == 3
        assert len(result.tcp_flows) == 2
        assert result.dumbbell.flow_count == 5

    def test_zero_flows_rejected(self):
        with pytest.raises(ValueError):
            build_mixed_dumbbell(n_tfrc=0, n_tcp=0)

    def test_queue_scaling_with_bandwidth(self):
        small = build_mixed_dumbbell(n_tfrc=1, n_tcp=1, bandwidth_bps=1e6)
        large = build_mixed_dumbbell(n_tfrc=1, n_tcp=1, bandwidth_bps=64e6)
        assert (
            small.dumbbell.config.buffer_packets
            < large.dumbbell.config.buffer_packets
        )

    def test_seed_reproducibility(self):
        a = run_mixed_dumbbell(duration=10.0, n_tfrc=2, n_tcp=2, seed=5)
        b = run_mixed_dumbbell(duration=10.0, n_tfrc=2, n_tcp=2, seed=5)
        for fid in a.tcp_ids + a.tfrc_ids:
            assert a.throughput(fid, 5, 10) == b.throughput(fid, 5, 10)

    def test_different_seeds_differ(self):
        a = run_mixed_dumbbell(duration=10.0, n_tfrc=2, n_tcp=2, seed=5)
        b = run_mixed_dumbbell(duration=10.0, n_tfrc=2, n_tcp=2, seed=6)
        diffs = [
            a.throughput(fid, 5, 10) != b.throughput(fid, 5, 10)
            for fid in a.tcp_ids
        ]
        assert any(diffs)

    def test_steady_state_window(self):
        assert steady_state_window(100.0, 0.5) == (50.0, 100.0)
        with pytest.raises(ValueError):
            steady_state_window(0.0)


class TestSingleFlowHarness:
    def test_probe_invoked(self):
        times = []
        run_single_tfrc_on_lossy_path(
            loss_model=None, duration=1.0, probe=lambda sim, flow: times.append(sim.now),
            probe_interval=0.25,
        )
        assert len(times) == 4

    def test_loss_model_drives_estimator(self):
        result = run_single_tfrc_on_lossy_path(
            loss_model=periodic_loss(100), duration=20.0
        )
        assert result.flow.receiver.loss_event_rate() == pytest.approx(0.01, rel=0.5)
