"""Unit tests for the dumbbell topology and Dummynet pipe."""

import numpy as np
import pytest

from repro.net.dummynet import DummynetPipe
from repro.net.packet import Packet
from repro.net.topology import Dumbbell, DumbbellConfig
from repro.sim.engine import Simulator


def make_packet(flow, seq=0, size=1000):
    return Packet(flow_id=flow, seq=seq, size=size)


class TestDumbbellConfig:
    def test_default_matches_paper(self):
        cfg = DumbbellConfig()
        assert cfg.bandwidth_bps == 15e6
        assert cfg.delay == 0.050
        assert cfg.buffer_packets == 100
        assert cfg.red_min_thresh == 10
        assert cfg.red_max_thresh == 50
        assert cfg.red_gentle

    def test_build_queue_types(self):
        from repro.net.queues import DropTailQueue, REDQueue

        assert isinstance(
            DumbbellConfig(queue_type="droptail").build_queue(), DropTailQueue
        )
        assert isinstance(DumbbellConfig(queue_type="red").build_queue(), REDQueue)
        with pytest.raises(ValueError):
            DumbbellConfig(queue_type="fifo").build_queue()


class TestDumbbell:
    def test_round_trip_through_both_directions(self):
        sim = Simulator()
        config = DumbbellConfig(queue_type="droptail", access_jitter=0.0)
        dumbbell = Dumbbell(sim, config)
        fwd, rev = dumbbell.attach_flow("f", base_rtt=0.1)
        got_fwd, got_rev = [], []
        fwd.connect(lambda p: got_fwd.append(sim.now))
        rev.connect(lambda p: got_rev.append(sim.now))
        fwd.send(make_packet("f"))
        sim.run()
        # one-way: tx (0.533ms) + 50ms bottleneck + 2 access segments of
        # (0.1 - 0.1)/4 = 0 ... base_rtt == 2*delay here, so just tx+delay.
        assert got_fwd and got_fwd[0] == pytest.approx(0.050 + 1000 * 8 / 15e6)

    def test_base_rtt_honored(self):
        sim = Simulator()
        config = DumbbellConfig(queue_type="droptail", access_jitter=0.0)
        dumbbell = Dumbbell(sim, config)
        fwd, rev = dumbbell.attach_flow("f", base_rtt=0.2)
        fwd_time, rtt_time = [], []
        fwd.connect(lambda p: (fwd_time.append(sim.now), rev.send(make_packet("f"))))
        rev.connect(lambda p: rtt_time.append(sim.now))
        fwd.send(make_packet("f"))
        sim.run()
        tx = 1000 * 8 / 15e6
        # Forward one-way: segment + tx + 50ms + segment = 0.025*2 + tx + 0.05
        assert fwd_time[0] == pytest.approx(0.1 + tx)
        # Full RTT: 0.2 + 2 serializations (data fwd + data-size packet back).
        assert rtt_time[0] == pytest.approx(0.2 + 2 * tx)

    def test_flow_isolation(self):
        sim = Simulator()
        dumbbell = Dumbbell(sim, DumbbellConfig(queue_type="droptail", access_jitter=0.0))
        fa, _ = dumbbell.attach_flow("a", 0.1)
        fb, _ = dumbbell.attach_flow("b", 0.1)
        got_a, got_b = [], []
        fa.connect(lambda p: got_a.append(p.flow_id))
        fb.connect(lambda p: got_b.append(p.flow_id))
        fa.send(make_packet("a"))
        fb.send(make_packet("b"))
        sim.run()
        assert got_a == ["a"] and got_b == ["b"]

    def test_duplicate_flow_id_rejected(self):
        sim = Simulator()
        dumbbell = Dumbbell(sim)
        dumbbell.attach_flow("f", 0.1)
        with pytest.raises(ValueError):
            dumbbell.attach_flow("f", 0.1)

    def test_detach_flow_silences_delivery(self):
        sim = Simulator()
        dumbbell = Dumbbell(sim, DumbbellConfig(queue_type="droptail", access_jitter=0.0))
        fwd, _ = dumbbell.attach_flow("f", 0.1)
        got = []
        fwd.connect(got.append)
        fwd.send(make_packet("f"))
        dumbbell.detach_flow("f")
        sim.run()
        assert got == []
        assert dumbbell.flow_count == 0

    def test_jitter_preserves_per_flow_order(self):
        sim = Simulator()
        config = DumbbellConfig(queue_type="droptail", access_jitter=0.005)
        dumbbell = Dumbbell(sim, config, jitter_rng=np.random.default_rng(5))
        fwd, _ = dumbbell.attach_flow("f", 0.1)
        seqs = []
        fwd.connect(lambda p: seqs.append(p.seq))
        for i in range(200):
            sim.schedule(i * 0.0001, fwd.send, make_packet("f", seq=i))
        sim.run()
        assert seqs == sorted(seqs)

    def test_congestion_occurs_only_at_bottleneck(self):
        """Offered load above the bottleneck rate must produce drops."""
        sim = Simulator()
        config = DumbbellConfig(
            bandwidth_bps=1e6, queue_type="droptail", buffer_packets=5,
            access_jitter=0.0,
        )
        dumbbell = Dumbbell(sim, config)
        fwd, _ = dumbbell.attach_flow("f", 0.1)
        fwd.connect(lambda p: None)
        for i in range(100):
            sim.schedule(i * 0.001, fwd.send, make_packet("f", seq=i))  # 8 Mb/s in
        sim.run()
        assert dumbbell.forward_link.queue.dropped > 0


class TestDummynetPipe:
    def test_forward_rate_limit_and_delay(self):
        sim = Simulator()
        pipe = DummynetPipe(sim, bandwidth_bps=8e6, delay=0.02, buffer_packets=10)
        arrivals = []
        pipe.connect_forward(lambda p: arrivals.append(sim.now))
        pipe.send_forward(make_packet("f", 0))
        pipe.send_forward(make_packet("f", 1))
        sim.run()
        assert arrivals == [pytest.approx(0.021), pytest.approx(0.022)]

    def test_reverse_is_lossless_fixed_delay(self):
        sim = Simulator()
        pipe = DummynetPipe(sim, 8e6, 0.02, 2)
        arrivals = []
        pipe.connect_reverse(lambda p: arrivals.append(sim.now))
        for i in range(10):
            assert pipe.send_reverse(make_packet("f", i, size=40))
        sim.run()
        assert len(arrivals) == 10
        assert all(t == pytest.approx(0.02) for t in arrivals)

    def test_buffer_overflow(self):
        sim = Simulator()
        pipe = DummynetPipe(sim, 1e6, 0.01, buffer_packets=2)
        pipe.connect_forward(lambda p: None)
        results = [pipe.send_forward(make_packet("f", i)) for i in range(6)]
        assert False in results
        assert pipe.queue.dropped > 0

    def test_base_rtt(self):
        sim = Simulator()
        assert DummynetPipe(sim, 1e6, 0.03, 2).base_rtt == pytest.approx(0.06)

    def test_reverse_unconnected_raises(self):
        sim = Simulator()
        pipe = DummynetPipe(sim, 1e6, 0.01, 2)
        with pytest.raises(RuntimeError):
            pipe.send_reverse(make_packet("f"))
