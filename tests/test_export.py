"""Tests for the CSV figure-data exporters."""

import csv
import os

import pytest

from repro.experiments import export


def read_csv(path):
    with open(path) as handle:
        return list(csv.reader(handle))


class TestWriteCsv:
    def test_writes_header_and_rows(self, tmp_path):
        path = export.write_csv(
            str(tmp_path / "x.csv"), ["a", "b"], [(1, 2), (3, 4)]
        )
        rows = read_csv(path)
        assert rows == [["a", "b"], ["1", "2"], ["3", "4"]]

    def test_creates_directories(self, tmp_path):
        path = export.write_csv(
            str(tmp_path / "deep" / "dir" / "x.csv"), ["a"], [(1,)]
        )
        assert os.path.exists(path)


class TestExporters:
    def test_fig02_export(self, tmp_path):
        paths = export.export_fig02(str(tmp_path), duration=8.0)
        assert len(paths) == 1
        rows = read_csv(paths[0])
        assert rows[0] == [
            "time_s", "current_interval_pkts", "estimated_interval_pkts",
            "loss_event_rate", "tx_rate_bytes_per_s",
        ]
        assert len(rows) > 10
        # Every data row parses as floats.
        for row in rows[1:5]:
            [float(v) for v in row]

    def test_fig05_export(self, tmp_path):
        paths = export.export_fig05(str(tmp_path))
        rows = read_csv(paths[0])
        assert rows[0][0] == "p_loss"
        assert len(rows[0]) == 4  # p_loss + three multipliers
        values = [float(v) for v in rows[1]]
        assert values[1] <= values[0]  # p_event <= p_loss

    def test_fig19_and_20_export(self, tmp_path):
        paths = export.export_fig19(str(tmp_path))
        rows = read_csv(paths[0])
        assert len(rows) > 50
        paths = export.export_fig20(str(tmp_path))
        assert len(paths) == 2
        sweep_rows = read_csv(paths[1])
        assert sweep_rows[0] == ["drop_rate", "rtts_to_halve"]

    def test_cli_single(self, tmp_path, capsys):
        assert export.main(["fig02", str(tmp_path)]) == 0
        printed = capsys.readouterr().out.strip().splitlines()
        assert printed and all(os.path.exists(p) for p in printed)

    def test_cli_rejects_unknown(self, tmp_path):
        with pytest.raises(SystemExit):
            export.main(["fig99", str(tmp_path)])
