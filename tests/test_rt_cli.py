"""Tests for the real-stack CLI (argument handling + a loopback run)."""

import socket
import subprocess
import sys

import pytest

from repro.rt import cli


def free_port() -> int:
    sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return port


class TestParseEndpoint:
    def test_host_and_port(self):
        assert cli.parse_endpoint("10.0.0.1:9000") == ("10.0.0.1", 9000)

    def test_bare_port_defaults_to_loopback(self):
        assert cli.parse_endpoint("9000") == ("127.0.0.1", 9000)

    def test_bad_port_rejected(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            cli.parse_endpoint("host:notaport")
        with pytest.raises(argparse.ArgumentTypeError):
            cli.parse_endpoint("host:70000")


class TestParser:
    def test_send_requires_peer(self):
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args(["send"])

    def test_send_defaults(self):
        args = cli.build_parser().parse_args(["send", "--peer", "127.0.0.1:9"])
        assert args.flow_id == 1
        assert args.packet_size == 500
        assert args.duration == 10.0

    def test_proxy_args(self):
        args = cli.build_parser().parse_args(
            ["proxy", "--port", "9001", "--server", "127.0.0.1:9000",
             "--delay-ms", "20", "--loss-period", "25"]
        )
        assert args.server == ("127.0.0.1", 9000)
        assert args.delay_ms == 20.0
        assert args.loss_period == 25

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args(["frobnicate"])


@pytest.mark.slow
class TestEndToEnd:
    def test_send_recv_proxy_pipeline(self):
        """recv and proxy as subprocesses, send in-process (one real run)."""
        recv_port = free_port()
        proxy_port = free_port()
        recv_proc = subprocess.Popen(
            [sys.executable, "-m", "repro.rt.cli", "recv",
             "--port", str(recv_port), "--duration", "6"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        )
        proxy_proc = subprocess.Popen(
            [sys.executable, "-m", "repro.rt.cli", "proxy",
             "--port", str(proxy_port), "--server", f"127.0.0.1:{recv_port}",
             "--delay-ms", "10", "--loss-period", "20", "--duration", "6"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        )
        try:
            rc = cli.main([
                "send", "--peer", f"127.0.0.1:{proxy_port}",
                "--duration", "2.5", "--packet-size", "400",
                "--initial-rtt", "0.05",
            ])
            assert rc == 0
            recv_out = recv_proc.communicate(timeout=15)[0]
            proxy_out = proxy_proc.communicate(timeout=15)[0]
        finally:
            for proc in (recv_proc, proxy_proc):
                if proc.poll() is None:
                    proc.kill()
        assert "flow=1" in recv_out
        assert "received=" in recv_out
        assert "dropped=" in proxy_out
        assert recv_proc.returncode == 0
        assert proxy_proc.returncode == 0
