"""Sweep executor backends: serial/pool/queue equivalence, the file-queue
worker protocol (leases, heartbeats, crash resume, retry budget), and the
SweepCellError failure surface."""

import json
import os
import time

import pytest

import _executor_probe  # noqa: F401  (registers the "executor_probe" scenario)
from repro.scenarios import (
    FileQueue,
    FileQueueExecutor,
    PoolExecutor,
    ResultCache,
    ScenarioSpec,
    SerialExecutor,
    SweepCellError,
    SweepRunner,
    resolve_executor,
)
from repro.scenarios import worker as sweep_worker

BASE = ScenarioSpec("executor_probe", seed=3, extra={"x": 0})
GRID = {"extra.x": [1, 2, 3, 4], "seed": [10, 20]}

QUEUE_KW = dict(poll_interval=0.02, lease_timeout=30.0)


def _results(sweep):
    return [cell.result for cell in sweep.cells]


def _probe_payload(fq, spec, cache_root, attempts=0, max_attempts=3):
    """A task payload exactly as the coordinator would publish it."""
    return {
        "key": f"{spec.scenario}-{spec.spec_hash()}",
        "module": "_executor_probe",
        "spec": spec.to_dict(),
        "cache_dir": fq.encode_cache_dir(cache_root),
        "attempts": attempts,
        "max_attempts": max_attempts,
    }


class TestExecutorEquivalence:
    def test_serial_pool_queue_identical_results(self, tmp_path):
        serial = SweepRunner(BASE, GRID, executor="serial").run()
        pool = SweepRunner(BASE, GRID, parallel=2, executor="pool").run()
        queue = SweepRunner(
            BASE, GRID,
            executor=FileQueueExecutor(
                tmp_path / "queue", local_workers=2, **QUEUE_KW
            ),
        ).run()
        assert _results(serial) == _results(pool) == _results(queue)
        # byte-identical under canonical serialization, not merely ==
        dumps = [
            json.dumps(_results(s), sort_keys=True)
            for s in (serial, pool, queue)
        ]
        assert dumps[0] == dumps[1] == dumps[2]

    def test_queue_cache_bytes_match_serial_cache(self, tmp_path):
        serial_dir = tmp_path / "serial-cache"
        queue_dir = tmp_path / "queue"
        queue_cache = tmp_path / "queue-cache"
        SweepRunner(BASE, GRID, cache_dir=str(serial_dir)).run()
        SweepRunner(
            BASE, GRID,
            cache_dir=str(queue_cache),
            executor=FileQueueExecutor(queue_dir, local_workers=2, **QUEUE_KW),
        ).run()
        serial_entries = {
            p.name: p.read_bytes() for p in serial_dir.glob("*.json")
        }
        queue_entries = {
            p.name: p.read_bytes() for p in queue_cache.glob("*.json")
        }
        assert serial_entries and serial_entries == queue_entries

    def test_queue_defaults_cache_into_queue_dir(self, tmp_path):
        queue_dir = tmp_path / "q"
        sweep = SweepRunner(
            BASE, {"extra.x": [5]},
            parallel=1, executor="queue", queue_dir=str(queue_dir),
        ).run()
        assert sweep.cells[0].result["x"] == 5
        assert list((queue_dir / "results").glob("*.json"))

    def test_external_worker_drains_coordinator_queue(self, tmp_path):
        """local_workers=0 + a worker thread playing the 'other host'."""
        import threading

        queue_dir = tmp_path / "q"
        executor = FileQueueExecutor(queue_dir, local_workers=0, **QUEUE_KW)
        drained = threading.Thread(
            target=sweep_worker.drain,
            args=(str(queue_dir),),
            kwargs=dict(
                worker_id="other-host", idle_timeout=20.0,
                poll_interval=0.02, verbose=False, max_cells=2,
            ),
            daemon=True,
        )
        drained.start()
        sweep = SweepRunner(
            BASE, {"extra.x": [1, 2]}, parallel=0, executor=executor,
            cache_dir=str(tmp_path / "cache"),
        ).run()
        assert [c.result["x"] for c in sweep.cells] == [1, 2]
        drained.join(timeout=30)


class TestSweepCellError:
    BOOM_GRID = {"extra.x": [1, 2, 3], "extra.boom": [2]}

    def test_serial_failure_names_cell_and_keeps_partial(self, tmp_path):
        runner = SweepRunner(
            BASE, self.BOOM_GRID, cache_dir=str(tmp_path / "c")
        )
        with pytest.raises(SweepCellError) as excinfo:
            runner.run()
        err = excinfo.value
        assert "executor_probe[" in str(err) and "extra.x=2" in str(err)
        assert err.overrides == {"extra.x": 2, "extra.boom": 2}
        assert isinstance(err.__cause__, RuntimeError)
        # the partial result keeps the cell that finished before the failure
        assert err.partial is not None
        finished = [c for c in err.partial.cells if c.result is not None]
        assert [c.overrides["extra.x"] for c in finished] == [1]

    def test_pool_failure_names_cell_and_chains_cause(self):
        with pytest.raises(SweepCellError) as excinfo:
            SweepRunner(
                BASE, self.BOOM_GRID, parallel=2, executor="pool"
            ).run()
        err = excinfo.value
        assert "extra.x=2" in str(err) and "pool worker" in str(err)
        assert isinstance(err.__cause__, RuntimeError)
        assert err.partial is not None

    def test_queue_failure_exhausts_retry_budget(self, tmp_path):
        queue_dir = tmp_path / "q"
        executor = FileQueueExecutor(
            queue_dir, local_workers=1, max_attempts=2, **QUEUE_KW
        )
        with pytest.raises(SweepCellError) as excinfo:
            SweepRunner(BASE, self.BOOM_GRID, executor=executor).run()
        err = excinfo.value
        assert "extra.x=2" in str(err) and "budget 2" in str(err)
        # exactly max_attempts failure records for the exploding cell
        failing = BASE.override({"extra.x": 2, "extra.boom": 2})
        key = f"executor_probe-{failing.spec_hash()}"
        assert FileQueue(queue_dir).failure_count(key) == 2
        # the failed sweep withdraws its unclaimed tasks
        time.sleep(0.1)
        assert not list((queue_dir / "tasks").glob("*.json"))


class TestCrashResume:
    def test_stale_lease_reclaimed_and_finished_cells_not_recomputed(
        self, tmp_path
    ):
        touch_dir = tmp_path / "touches"
        base = BASE.override({"extra.touch_dir": str(touch_dir)})
        grid = {"extra.x": [1, 2, 3, 4, 5, 6]}
        expected = _results(SweepRunner(base, grid).run())

        queue_dir = tmp_path / "q"
        cache_root = tmp_path / "resume-cache"
        cache = ResultCache(cache_root)
        cells = SweepRunner(base, grid).cells()
        # three cells already finished before the "crash"
        for cell in cells[:3]:
            cache.put(cell.spec, expected[cell.index])
        # one unfinished cell is stuck under a dead worker's stale lease
        fq = FileQueue(queue_dir).ensure()
        stuck = cells[3].spec
        fq.enqueue(_probe_payload(fq, stuck, cache_root))
        claimed = fq.claim_next("dead-worker")
        assert claimed is not None
        claim_path, _ = claimed
        stale = time.time() - 100.0
        os.utime(claim_path, (stale, stale))

        serial_touches = len(list(touch_dir.glob("*")))
        executor = FileQueueExecutor(
            queue_dir, local_workers=1, lease_timeout=1.0, poll_interval=0.02,
        )
        sweep = SweepRunner(
            base, grid, cache_dir=str(cache_root), executor=executor
        ).run()

        assert _results(sweep) == expected
        assert json.dumps(_results(sweep), sort_keys=True) == json.dumps(
            expected, sort_keys=True
        )
        assert sweep.cache_hits == 3
        # only the three unfinished cells actually executed on the resume
        resumed_touches = len(list(touch_dir.glob("*"))) - serial_touches
        assert resumed_touches == 3
        # the dead worker's lease was reclaimed (recorded as lease_expired)
        key = f"executor_probe-{stuck.spec_hash()}"
        records = fq.read_failures(key)
        assert [r["kind"] for r in records] == ["lease_expired"]
        assert not fq.claim_path(key).exists()

    def test_resume_with_stale_spent_claim_still_completes(self, tmp_path):
        """Leftover failure records plus a dead worker's claim whose
        payload already spent the budget must not strand or abort the
        rerun: records are cleared, the lease is reclaimed, and the cell
        completes."""
        queue_dir = tmp_path / "q"
        cache_root = tmp_path / "cache"
        fq = FileQueue(queue_dir).ensure()
        spec = BASE.override({"extra.x": 6})
        key = f"executor_probe-{spec.spec_hash()}"
        for n in (1, 2):
            fq.record_failure(
                key, worker="old-run", kind="error", error="boom", attempts=n
            )
        fq.enqueue(
            _probe_payload(fq, spec, cache_root, attempts=2, max_attempts=2)
        )
        claimed = fq.claim_next("dead-worker")
        assert claimed is not None
        stale = time.time() - 100.0
        os.utime(claimed[0], (stale, stale))

        executor = FileQueueExecutor(
            queue_dir, local_workers=1, lease_timeout=1.0,
            poll_interval=0.02, max_attempts=2,
        )
        sweep = SweepRunner(
            BASE, {"extra.x": [6]}, cache_dir=str(cache_root),
            executor=executor,
        ).run()
        assert sweep.cells[0].result["x"] == 6
        # old records were cleared; only this run's reclaim is on file
        assert [r["kind"] for r in fq.read_failures(key)] == ["lease_expired"]

    def test_failed_sweep_rerun_gets_fresh_retry_budget(self, tmp_path):
        """Failure records from an aborted run must not poison the next
        one: a rerun re-attempts the cell instead of aborting instantly."""
        touch_dir = tmp_path / "touches"
        base = BASE.override({"extra.touch_dir": str(touch_dir)})
        grid = {"extra.x": [1, 2], "extra.boom": [2]}

        def attempt():
            executor = FileQueueExecutor(
                tmp_path / "q", local_workers=1, max_attempts=2, **QUEUE_KW
            )
            with pytest.raises(SweepCellError):
                SweepRunner(
                    base, grid, cache_dir=str(tmp_path / "cache"),
                    executor=executor,
                ).run()

        attempt()
        first = len(list(touch_dir.glob("x2-*")))
        assert first == 2  # the full retry budget was actually spent
        attempt()
        assert len(list(touch_dir.glob("x2-*"))) == first + 2

    def test_rerun_after_completion_is_all_cache_hits(self, tmp_path):
        queue_dir = tmp_path / "q"
        cache_dir = str(tmp_path / "cache")
        kwargs = dict(
            cache_dir=cache_dir,
            executor=FileQueueExecutor(
                queue_dir, local_workers=1, **QUEUE_KW
            ),
        )
        first = SweepRunner(BASE, {"extra.x": [7, 8]}, **kwargs).run()
        assert first.cache_hits == 0
        second = SweepRunner(BASE, {"extra.x": [7, 8]}, **kwargs).run()
        assert second.cache_hits == 2
        assert _results(first) == _results(second)


class TestWorkerCli:
    def test_once_on_empty_queue_exits(self, tmp_path, capsys):
        assert sweep_worker.main([str(tmp_path / "q"), "--once"]) == 0
        assert "exiting after 0 cell(s)" in capsys.readouterr().err

    def test_drains_manually_enqueued_task(self, tmp_path):
        queue_dir = tmp_path / "q"
        cache_root = tmp_path / "cache"
        fq = FileQueue(queue_dir).ensure()
        spec = BASE.override({"extra.x": 9})
        fq.enqueue(_probe_payload(fq, spec, cache_root))
        assert (
            sweep_worker.main(
                [str(queue_dir), "--once", "--quiet", "--worker-id", "t1"]
            )
            == 0
        )
        assert ResultCache(cache_root).get(spec) == {
            "x": 9, "seed": 3, "product": 27, "duration": 60.0,
        }
        key = f"executor_probe-{spec.spec_hash()}"
        marker = fq.read_done(key)
        assert marker is not None and marker["worker"] == "t1"
        assert not fq.claim_path(key).exists()
        assert not fq.task_path(key).exists()

    def test_cached_cell_completes_without_execution(self, tmp_path):
        queue_dir = tmp_path / "q"
        cache_root = tmp_path / "cache"
        touch_dir = tmp_path / "touches"
        fq = FileQueue(queue_dir).ensure()
        spec = BASE.override(
            {"extra.x": 4, "extra.touch_dir": str(touch_dir)}
        )
        ResultCache(cache_root).put(spec, {"x": 4, "precomputed": True})
        fq.enqueue(_probe_payload(fq, spec, cache_root))
        executed = sweep_worker.drain(
            str(queue_dir), worker_id="t2", once=True, verbose=False
        )
        assert executed == 1
        marker = fq.read_done(f"executor_probe-{spec.spec_hash()}")
        assert marker is not None and marker["cached"] is True
        assert not touch_dir.exists()  # never actually ran

    def test_failing_cell_requeued_until_budget_spent(self, tmp_path):
        queue_dir = tmp_path / "q"
        cache_root = tmp_path / "cache"
        fq = FileQueue(queue_dir).ensure()
        spec = BASE.override({"extra.x": 5, "extra.boom": 5})
        fq.enqueue(_probe_payload(fq, spec, cache_root, max_attempts=2))
        sweep_worker.drain(
            str(queue_dir), worker_id="t3", once=True, verbose=False
        )
        key = f"executor_probe-{spec.spec_hash()}"
        assert fq.failure_count(key) == 2
        assert fq.read_done(key) is None
        assert not fq.task_path(key).exists()  # budget spent: not requeued
        records = fq.read_failures(key)
        assert all("probe exploded on x=5" in r["error"] for r in records)


class TestExecutorArguments:
    def test_resolve_defaults_preserve_legacy_behavior(self):
        assert isinstance(resolve_executor(None, parallel=1), SerialExecutor)
        assert isinstance(resolve_executor(None, parallel=4), PoolExecutor)
        # a single pending cell short-circuits to serial, as before
        assert isinstance(
            resolve_executor(None, parallel=4, pending=1), SerialExecutor
        )

    def test_invalid_arguments_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            SweepRunner(BASE, executor="bogus")
        with pytest.raises(ValueError):
            SweepRunner(BASE, executor="queue")  # no queue_dir
        with pytest.raises(ValueError):
            SweepRunner(BASE, parallel=0)  # 0 only valid with queue
        with pytest.raises(ValueError):
            resolve_executor("queue")
        with pytest.raises(ValueError):
            FileQueueExecutor(tmp_path, local_workers=-1)
        with pytest.raises(ValueError):
            FileQueueExecutor(tmp_path, max_attempts=0)
        # parallel=0 with the queue executor is the external-workers mode
        SweepRunner(
            BASE, parallel=0, executor="queue", queue_dir=str(tmp_path / "q")
        )

    def test_queue_executor_requires_cache(self, tmp_path):
        from repro.scenarios import SweepPlan

        executor = FileQueueExecutor(tmp_path / "q")
        with pytest.raises(ValueError, match="cache"):
            next(
                executor.run_cells(
                    SweepPlan(cells=[], module_name="_executor_probe")
                )
            )


@pytest.mark.slow
class TestFig06SubGridEquivalence:
    """Acceptance: a real figure sub-grid is byte-identical across all
    three executors (two workers for pool and queue)."""

    def test_fig06_subgrid_serial_pool_queue(self, tmp_path):
        from repro.experiments import fig06_fairness_grid as fig06

        kwargs = dict(
            link_rates_mbps=(1, 2), flow_counts=(2,), queue_types=("red",),
            duration=4.0, seed=0,
        )
        serial = fig06.run(**kwargs)
        pool = fig06.run(parallel=2, executor="pool", **kwargs)
        queue = fig06.run(
            parallel=2, executor="queue",
            queue_dir=str(tmp_path / "q"),
            cache_dir=str(tmp_path / "cache"),
            **kwargs,
        )
        canon = [
            json.dumps([cell.__dict__ for cell in res.cells], sort_keys=True)
            for res in (serial, pool, queue)
        ]
        assert canon[0] == canon[1] == canon[2]
