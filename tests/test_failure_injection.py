"""Failure injection: TFRC robustness to hostile path conditions.

The paper's design goals (section 3) include explicit failure behaviour:
feedback starvation must walk the rate down to silence, and the receiver
must tolerate whatever arrival patterns the network produces.  These tests
impose the failures on the full simulated stack and check the protocol
degrades the way the paper specifies.
"""

import numpy as np
import pytest

from repro.core import TfrcFlow
from repro.core.sender import T_MBI
from repro.experiments.common import run_single_tfrc_on_lossy_path
from repro.net.monitor import FlowMonitor
from repro.net.path import LossyPath, bernoulli_loss, periodic_loss
from repro.rt.scheduler import RealtimeScheduler
from repro.rt.udp import UdpTfrcReceiver
from repro.sim import Simulator


def build_flow(sim, forward, reverse, **kwargs):
    monitor = FlowMonitor()
    flow = TfrcFlow(sim, "tfrc", forward, reverse,
                    on_data=monitor.on_packet, **kwargs)
    return flow, monitor


class TestFeedbackPathLoss:
    def test_lossy_reverse_path_still_converges(self):
        """Feedback drops slow adaptation but must not break it."""
        sim = Simulator()
        rng = np.random.default_rng(0)
        forward = LossyPath(sim, delay=0.05, loss_model=periodic_loss(100))
        reverse = LossyPath(sim, delay=0.05, loss_model=bernoulli_loss(0.3, rng))
        flow, monitor = build_flow(sim, forward, reverse)
        flow.start()
        sim.run(until=60.0)
        # 70% of reports arrive; p should still estimate ~1%.
        assert flow.sender.feedback_received > 50
        assert 0.003 < flow.receiver.loss_event_rate() < 0.05
        assert monitor.throughput_bps("tfrc", 30, 60) > 0

    def test_total_feedback_blackout_walks_rate_to_floor(self):
        """Section 3 design goal: no feedback => reduce, ultimately stop.

        Periodic forward loss keeps the pre-blackout rate finite (a clean
        uncapped pipe would let slow start double forever).
        """
        sim = Simulator()
        forward = LossyPath(sim, delay=0.05, loss_model=periodic_loss(100))
        reverse = LossyPath(sim, delay=0.05,
                            loss_model=lambda packet, now: now > 5.0)
        flow, _ = build_flow(sim, forward, reverse)
        flow.start()
        sim.run(until=5.0)
        rate_before = flow.sender.rate
        sim.run(until=120.0)
        assert flow.sender.rate < rate_before / 4
        floor = flow.sender.packet_size / T_MBI
        assert flow.sender.rate >= floor

    def test_feedback_resumes_after_blackout(self):
        """The sender recovers once the reverse path heals."""
        sim = Simulator()
        forward = LossyPath(sim, delay=0.05, loss_model=periodic_loss(100))
        reverse = LossyPath(sim, delay=0.05,
                            loss_model=lambda packet, now: 5.0 < now < 15.0)
        flow, _ = build_flow(sim, forward, reverse)
        flow.start()
        sim.run(until=14.9)
        rate_during = flow.sender.rate
        sim.run(until=40.0)
        assert flow.sender.rate > rate_during
        assert flow.sender.feedback_received > 0


class TestHostileArrivals:
    def test_duplicated_data_packets_do_not_create_loss(self):
        """Duplicate every surviving data packet: duplicates must not be
        misread as gaps or otherwise corrupt the estimator."""
        sim = Simulator()

        class DuplicatingPath(LossyPath):
            def send(self, packet):
                delivered = super().send(packet)
                if delivered:
                    # Re-deliver the same sequence number out of band.
                    self.sim.schedule_in(self.delay + 0.001,
                                         self._receiver, packet)
                return delivered

        # Periodic loss bounds the rate; the duplicates must not change
        # the measured loss event rate (~1/100).
        forward = DuplicatingPath(sim, delay=0.05,
                                  loss_model=periodic_loss(100))
        reverse = LossyPath(sim, delay=0.05)
        flow, _ = build_flow(sim, forward, reverse)
        flow.start()
        sim.run(until=30.0)
        assert 0.005 < flow.receiver.loss_event_rate() < 0.03

    def test_rtt_step_increase_tracked(self):
        """A mid-run RTT step must be absorbed by the EWMA, not crash pacing."""
        sim = Simulator()
        forward = LossyPath(sim, delay=0.02, loss_model=periodic_loss(100))
        reverse = LossyPath(sim, delay=0.02)

        def raise_delay():
            forward.delay = 0.10
            reverse.delay = 0.10

        sim.schedule(20.0, raise_delay)
        flow, _ = build_flow(sim, forward, reverse)
        flow.start()
        sim.run(until=60.0)
        assert flow.sender.srtt == pytest.approx(0.2, rel=0.3)

    def test_rtt_step_decrease_tracked(self):
        sim = Simulator()
        forward = LossyPath(sim, delay=0.10, loss_model=periodic_loss(100))
        reverse = LossyPath(sim, delay=0.10)

        def lower_delay():
            forward.delay = 0.02
            reverse.delay = 0.02

        sim.schedule(20.0, lower_delay)
        flow, _ = build_flow(sim, forward, reverse)
        flow.start()
        sim.run(until=60.0)
        assert flow.sender.srtt == pytest.approx(0.04, rel=0.4)

    def test_burst_loss_of_entire_windows_survivable(self):
        """Periodic total outages (all packets dropped for 0.5 s every 5 s)."""
        sim = Simulator()

        def outage(packet, now):
            return (now % 5.0) < 0.5

        forward = LossyPath(sim, delay=0.05, loss_model=outage)
        reverse = LossyPath(sim, delay=0.05)
        flow, monitor = build_flow(sim, forward, reverse)
        flow.start()
        sim.run(until=60.0)
        # Still sending, still measuring loss, did not divide by zero.
        assert flow.sender.rate > 0
        assert flow.receiver.loss_event_rate() > 0
        assert monitor.throughput_bps("tfrc", 30, 60) > 0


class TestSequenceUnwrap:
    """32-bit wire sequence numbers unwrap into the unbounded space."""

    def make_receiver(self):
        scheduler = RealtimeScheduler()
        receiver = UdpTfrcReceiver(scheduler)
        return receiver

    def test_monotone_sequences_pass_through(self):
        receiver = self.make_receiver()
        try:
            assert [receiver._unwrap(s) for s in (0, 1, 2, 5)] == [0, 1, 2, 5]
        finally:
            receiver.close()

    def test_wrap_boundary_continues_counting(self):
        receiver = self.make_receiver()
        top = (1 << 32) - 2
        try:
            assert receiver._unwrap(top) == top
            assert receiver._unwrap(top + 1) == top + 1
            assert receiver._unwrap(0) == 1 << 32
            assert receiver._unwrap(1) == (1 << 32) + 1
        finally:
            receiver.close()

    def test_late_packet_after_wrap_maps_to_old_epoch(self):
        receiver = self.make_receiver()
        top = (1 << 32) - 1
        try:
            receiver._unwrap(top)       # last seq of epoch 0
            receiver._unwrap(3)         # epoch 1 begins
            # A straggler from before the wrap resolves into epoch 0.
            assert receiver._unwrap(top - 1) == top - 1
        finally:
            receiver.close()

    def test_reordered_within_epoch(self):
        receiver = self.make_receiver()
        try:
            receiver._unwrap(10)
            assert receiver._unwrap(8) == 8
            assert receiver._unwrap(11) == 11
        finally:
            receiver.close()
