"""Unit and property tests for packets and queue disciplines."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.net.packet import Packet, PacketType
from repro.net.queues import DropTailQueue, REDQueue


def make_packet(seq=0, size=1000, flow="f"):
    return Packet(flow_id=flow, seq=seq, size=size)


class TestPacket:
    def test_defaults(self):
        p = make_packet()
        assert p.is_data and not p.is_ack
        assert p.ptype is PacketType.DATA

    def test_uid_unique(self):
        a, b = make_packet(), make_packet()
        assert a.uid != b.uid

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            Packet(flow_id="f", seq=0, size=0)

    def test_ack_type(self):
        p = Packet(flow_id="f", seq=0, size=40, ptype=PacketType.ACK)
        assert p.is_ack and not p.is_data


class TestDropTail:
    def test_fifo_order(self):
        q = DropTailQueue(10)
        for i in range(5):
            assert q.enqueue(make_packet(seq=i), now=0.0)
        out = [q.dequeue(0.0).seq for _ in range(5)]
        assert out == [0, 1, 2, 3, 4]

    def test_drops_when_full(self):
        q = DropTailQueue(2)
        assert q.enqueue(make_packet(0), 0.0)
        assert q.enqueue(make_packet(1), 0.0)
        assert not q.enqueue(make_packet(2), 0.0)
        assert q.dropped == 1

    def test_dequeue_empty_returns_none(self):
        assert DropTailQueue(1).dequeue(0.0) is None

    def test_drop_hook_called(self):
        q = DropTailQueue(1)
        dropped = []
        q.drop_hook = dropped.append
        q.enqueue(make_packet(0), 0.0)
        q.enqueue(make_packet(1), 0.0)
        assert [p.seq for p in dropped] == [1]

    def test_byte_accounting(self):
        q = DropTailQueue(10)
        q.enqueue(make_packet(0, size=700), 0.0)
        q.enqueue(make_packet(1, size=300), 0.0)
        assert q.bytes_queued == 1000
        q.dequeue(0.0)
        assert q.bytes_queued == 300

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            DropTailQueue(0)

    @given(st.lists(st.booleans(), min_size=1, max_size=200))
    @settings(max_examples=50)
    def test_conservation_invariant(self, ops):
        """enqueued == dequeued + dropped + resident, for any op sequence."""
        q = DropTailQueue(5)
        seq = 0
        for is_enqueue in ops:
            if is_enqueue:
                q.enqueue(make_packet(seq), 0.0)
                seq += 1
            else:
                q.dequeue(0.0)
        assert q.enqueued == q.dequeued + len(q)
        assert q.enqueued + q.dropped == seq


class TestRED:
    def make_red(self, capacity=100, **kwargs):
        defaults = dict(
            min_thresh=10, max_thresh=50, max_p=0.1,
            rng=np.random.default_rng(0), weight=0.002,
        )
        defaults.update(kwargs)
        return REDQueue(capacity, **defaults)

    def test_no_drops_below_min_thresh(self):
        q = self.make_red()
        for i in range(9):
            assert q.enqueue(make_packet(i), now=i * 0.001)
        assert q.dropped == 0

    def test_forced_drop_when_full(self):
        q = self.make_red(capacity=5, min_thresh=100, max_thresh=200)
        for i in range(5):
            q.enqueue(make_packet(i), 0.0)
        assert not q.enqueue(make_packet(5), 0.0)
        assert q.forced_drops == 1

    def test_early_drops_between_thresholds(self):
        q = self.make_red(capacity=1000, weight=1.0)  # avg tracks instantly
        drops_before = q.early_drops
        for i in range(400):
            q.enqueue(make_packet(i), 0.0)
        assert q.early_drops > drops_before

    def test_gentle_region_increases_drop_rate(self):
        gentle = self.make_red(capacity=10_000, weight=1.0, gentle=True)
        # Fill so avg sits between max_thresh and 2*max_thresh.
        accepted = 0
        for i in range(80):
            if gentle.enqueue(make_packet(i), 0.0):
                accepted += 1
        # In the gentle band the drop probability exceeds max_p but is < 1.
        assert 0 < gentle.early_drops + gentle.forced_drops < 80

    def test_non_gentle_cliff(self):
        q = self.make_red(capacity=10_000, weight=1.0, gentle=False)
        # Early drops (p <= max_p) slow the climb; push well past max_thresh.
        for i in range(100):
            q.enqueue(make_packet(i), 0.0)
        assert len(q) >= q.max_thresh
        # avg > max_thresh without gentle: every arrival is force-dropped.
        assert not q.enqueue(make_packet(999), 0.0)
        assert q.forced_drops >= 1

    def test_avg_decays_when_idle(self):
        q = self.make_red(weight=0.5)
        q.set_service_rate(8e6)  # 1 ms per 1000-byte packet
        for i in range(20):
            q.enqueue(make_packet(i), 0.0)
        while q.dequeue(0.0) is not None:
            pass
        avg_before = q.avg
        q.enqueue(make_packet(99), now=1.0)  # after 1000 idle packet-times
        assert q.avg < avg_before * 0.01

    def test_avg_keeps_decaying_across_consecutive_idle_arrivals(self):
        """Regression: avg must not freeze after the first idle arrival."""
        q = self.make_red(weight=0.5, capacity=100)
        q.set_service_rate(8e6)
        for i in range(60):
            q.enqueue(make_packet(i), 0.0)
        while q.dequeue(0.0) is not None:
            pass
        q.enqueue(make_packet(100), now=0.1)
        q.dequeue(0.1)
        first = q.avg
        q.enqueue(make_packet(101), now=5.0)
        assert q.avg < first  # kept decaying during the second idle period

    def test_idle_decay_without_service_rate_falls_back(self):
        """Regression: with no service rate wired up, avg used to freeze
        across idle periods (the idle-decay branch was skipped entirely);
        it must fall back to the mean-packet-size-derived packet time."""
        q = self.make_red(weight=0.5)
        assert not q.has_service_rate
        for i in range(20):
            q.enqueue(make_packet(i), 0.0)
        while q.dequeue(0.0) is not None:
            pass
        avg_before = q.avg
        assert avg_before > 0
        # 10 s idle at the 15 Mb/s fallback is ~18750 packet-times: the
        # average must have decayed to (essentially) zero, not stayed put.
        q.enqueue(make_packet(99), now=10.0)
        assert q.avg < avg_before * 0.01

    def test_idle_decay_keeps_decaying_without_service_rate(self):
        q = self.make_red(weight=0.5)
        for i in range(40):
            q.enqueue(make_packet(i), 0.0)
        while q.dequeue(0.0) is not None:
            pass
        q.enqueue(make_packet(100), now=0.005)
        q.dequeue(0.005)
        first = q.avg
        q.enqueue(make_packet(101), now=1.0)
        assert q.avg < first

    def test_explicit_service_rate_drives_idle_decay_speed(self):
        """A slower link decays less over the same idle period."""
        def decayed_avg(rate_bps):
            q = self.make_red(weight=0.5)
            q.set_service_rate(rate_bps)
            for i in range(20):
                q.enqueue(make_packet(i), 0.0)
            while q.dequeue(0.0) is not None:
                pass
            q.enqueue(make_packet(99), now=0.05)
            return q.avg

        assert decayed_avg(64e3) > decayed_avg(15e6)

    def test_link_wires_service_rate_into_red(self):
        from repro.net.link import Link
        from repro.sim.engine import Simulator

        q = self.make_red()
        assert not q.has_service_rate
        Link(Simulator(), 2e6, 0.01, q)
        assert q.has_service_rate

    def test_dumbbell_wires_service_rate_into_red(self):
        from repro.net.topology import Dumbbell, DumbbellConfig
        from repro.sim.engine import Simulator

        dumbbell = Dumbbell(Simulator(), DumbbellConfig(queue_type="red"))
        assert dumbbell.forward_link.queue.has_service_rate

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            self.make_red(min_thresh=50, max_thresh=10)
        with pytest.raises(ValueError):
            self.make_red(max_p=0.0)
        with pytest.raises(ValueError):
            self.make_red(weight=2.0)
        with pytest.raises(ValueError):
            self.make_red().set_service_rate(0.0)

    @given(st.integers(min_value=1, max_value=300))
    @settings(max_examples=30)
    def test_conservation_invariant(self, arrivals):
        q = self.make_red(capacity=50)
        for i in range(arrivals):
            q.enqueue(make_packet(i), now=i * 0.0005)
            if i % 3 == 0:
                q.dequeue(i * 0.0005)
        assert q.enqueued == q.dequeued + len(q)
        assert q.enqueued + q.dropped == arrivals

    def test_drop_probability_monotone_in_avg(self):
        q = self.make_red()
        probs = []
        for avg in (5, 15, 30, 49, 60, 90):
            q.avg = avg
            probs.append(q._drop_probability())
        assert probs == sorted(probs)
        assert probs[0] == 0.0
