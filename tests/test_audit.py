"""``tfrc-audit``: per-rule fixtures (hit / suppressed / allowlisted),
the baseline gate, the shared findings schema, and the repo smoke test
asserting the tree is audit-clean against the committed baseline."""

import json
import time
from pathlib import Path
from textwrap import dedent

import pytest

from repro.analysis.audit import AuditConfig, run_audit
from repro.analysis.audit.cli import main as audit_main
from repro.analysis.audit.records import finding_record, read_findings
from repro.scenarios import ScenarioSpec, SweepRunner, register_scenario
from repro.scenarios import faults

REPO_ROOT = Path(__file__).resolve().parents[1]


def _write(root: Path, rel: str, text: str) -> None:
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(dedent(text), encoding="utf-8")


def _rules(findings):
    return [f.rule for f in findings]


def _tree(tmp_path: Path) -> Path:
    (tmp_path / "src" / "repro").mkdir(parents=True, exist_ok=True)
    return tmp_path


# --------------------------------------------------------- determinism rules


class TestDeterminismRules:
    def test_wall_clock_hit_aliased_and_suppressed(self, tmp_path):
        root = _tree(tmp_path)
        _write(root, "src/repro/sim/probe.py", """\
            import time as t
            from datetime import datetime

            def sample():
                return t.time()

            def stamp():
                return datetime.now()

            def excused():
                return t.time()  # tfrc-audit: ignore[determinism.wall-clock] -- why
            """)
        findings = run_audit(root)
        assert _rules(findings) == ["determinism.wall-clock"] * 2
        assert findings[0].line == 5

    def test_wall_clock_allowlisted_in_rt_layer(self, tmp_path):
        root = _tree(tmp_path)
        _write(root, "src/repro/rt/pacer.py", """\
            import time

            def now():
                return time.time()
            """)
        assert run_audit(root) == []

    def test_global_rng_from_import_alias(self, tmp_path):
        root = _tree(tmp_path)
        _write(root, "src/repro/core/jitter.py", """\
            from random import choice
            import random

            def pick(xs):
                return choice(xs)

            def draw():
                return random.random()

            def seeded():
                return random.Random(7).random()  # instance: fine
            """)
        assert _rules(run_audit(root)) == ["determinism.global-rng"] * 2

    def test_unsorted_listdir_vs_sanitized(self, tmp_path):
        root = _tree(tmp_path)
        _write(root, "src/repro/net/walk.py", """\
            import os

            def bad(d):
                return [n for n in os.listdir(d)]

            def good(d):
                return sorted(os.listdir(d))

            def counted(p):
                return sum(1 for _ in p.glob("*.json"))

            def raw(p):
                for entry in p.iterdir():
                    yield entry
            """)
        findings = run_audit(root)
        assert _rules(findings) == ["determinism.unsorted-listdir"] * 2
        assert [f.line for f in findings] == [4, 13]

    def test_set_iteration(self, tmp_path):
        root = _tree(tmp_path)
        _write(root, "src/repro/tcp/order.py", """\
            def bad(xs):
                return [x for x in set(xs)]

            def worse(xs):
                return list(set(xs))

            def good(xs):
                return sorted(set(xs))
            """)
        assert _rules(run_audit(root)) == ["determinism.set-iteration"] * 2


# ------------------------------------------------------------- fs-protocol


class TestFsioRules:
    def test_raw_writes_flagged_outside_fsio(self, tmp_path):
        root = _tree(tmp_path)
        _write(root, "src/repro/scenarios/leaky.py", """\
            import json

            def save(path, payload):
                path.write_text("boom")
                with open(path, "w") as fh:
                    json.dump(payload, fh, allow_nan=False)
            """)
        assert _rules(run_audit(root)) == [
            "fsio.raw-write", "fsio.raw-write", "fsio.stream-dump",
        ]

    def test_blessed_module_and_suppression(self, tmp_path):
        root = _tree(tmp_path)
        _write(root, "src/repro/scenarios/_fsio.py", """\
            def atomic(path, text):
                with path.open("w") as fh:
                    fh.write(text)
            """)
        _write(root, "src/repro/scenarios/torn.py", """\
            def tear(path):
                # tfrc-audit: ignore[fsio] -- deliberately torn
                with path.open("w") as fh:
                    fh.write("ha")
            """)
        assert run_audit(root) == []

    def test_append_mode_is_not_a_content_write(self, tmp_path):
        root = _tree(tmp_path)
        _write(root, "src/repro/scenarios/clock.py", """\
            def touch(sentinel):
                with sentinel.open("a"):
                    pass
            """)
        assert run_audit(root) == []


# ------------------------------------------------------------ cache contract


class TestCacheRules:
    def test_non_finite_in_registered_scenario(self, tmp_path):
        root = _tree(tmp_path)
        _write(root, "src/repro/experiments/figx.py", """\
            import math
            from repro.scenarios import register_scenario

            @register_scenario("figx_cell")
            def run(spec):
                return {"metric": float("nan"), "bound": math.inf}

            def helper():
                return float("inf")  # not a scenario function: fine
            """)
        findings = run_audit(root)
        assert _rules(findings) == ["cache.non-finite-literal"] * 2

    def test_lenient_json_dump(self, tmp_path):
        root = _tree(tmp_path)
        _write(root, "src/repro/wire/export.py", """\
            import json

            def bad(d):
                return json.dumps(d)

            def good(d):
                return json.dumps(d, allow_nan=False)
            """)
        assert _rules(run_audit(root)) == ["cache.lenient-json-dump"]


# -------------------------------------------------------- registry coherence


class TestRegistryRules:
    def test_duplicate_scenario(self, tmp_path):
        root = _tree(tmp_path)
        _write(root, "src/repro/scenarios/dupes.py", """\
            from repro.scenarios.spec import register_scenario

            @register_scenario("twice")
            def a(spec):
                return {}

            @register_scenario("twice")
            def b(spec):
                return {}
            """)
        assert _rules(run_audit(root)) == ["registry.duplicate-scenario"]

    def test_executor_name_drift_all_directions(self, tmp_path):
        root = _tree(tmp_path)
        _write(root, "src/repro/scenarios/executors.py", """\
            EXECUTOR_NAMES = ("serial", "ghost")

            class SweepExecutor:
                name = "abstract"

            class SerialExecutor(SweepExecutor):
                name = "serial"

            class RogueExecutor(SweepExecutor):
                name = "rogue"

            def resolve(executor):
                if executor == "bogus":
                    return None
            """)
        _write(root, "src/repro/experiments/runner.py", """\
            def build(parser):
                parser.add_argument("--executor", choices=("serial",))
            """)
        rules = _rules(run_audit(root))
        assert rules.count("registry.executor-name-drift") == 4
        details = [f.detail for f in run_audit(root)]
        assert any("'ghost'" in d for d in details)  # listed, unclaimed
        assert any("'rogue'" in d for d in details)  # claimed, unlisted
        assert any("'bogus'" in d for d in details)  # compared, unknown
        assert any("choices" in d for d in details)  # CLI not on the table

    def test_executor_tables_in_agreement(self, tmp_path):
        root = _tree(tmp_path)
        _write(root, "src/repro/scenarios/executors.py", """\
            EXECUTOR_NAMES = ("serial",)

            class SweepExecutor:
                name = "abstract"

            class SerialExecutor(SweepExecutor):
                name = "serial"

            def resolve(executor):
                if executor == "serial":
                    return SerialExecutor()
            """)
        _write(root, "src/repro/experiments/runner.py", """\
            from repro.scenarios.executors import EXECUTOR_NAMES

            def build(parser):
                parser.add_argument("--executor", choices=EXECUTOR_NAMES)
            """)
        assert run_audit(root) == []

    def test_unregistered_scenario_ref_and_constant_resolution(self, tmp_path):
        root = _tree(tmp_path)
        _write(root, "src/repro/scenarios/cells.py", """\
            from repro.scenarios.spec import register_scenario

            GRID_NAME = "grid_cell"

            @register_scenario(GRID_NAME)
            def run(spec):
                return {}
            """)
        _write(root, "src/repro/experiments/use.py", """\
            from repro.scenarios import ScenarioSpec

            def good():
                return ScenarioSpec(scenario="grid_cell")

            def bad():
                return ScenarioSpec(scenario="grid_cel")
            """)
        findings = run_audit(root)
        assert _rules(findings) == ["registry.unregistered-scenario-ref"]
        assert "grid_cel" in findings[0].detail


# --------------------------------------------------------- test-tier hygiene


class TestTestTierRules:
    HEAVY = dedent("""\
        import pytest
        from repro.scenarios import ScenarioSpec, SweepRunner

        def test_heavy():
            base = ScenarioSpec(scenario="x", duration=120.0)
            SweepRunner(base, {"a": [1, 2, 3, 4, 5], "b": [1, 2]}).run()
        """)

    def test_unmarked_heavy_test_flagged(self, tmp_path):
        root = _tree(tmp_path)
        _write(root, "tests/test_heavy.py", self.HEAVY)
        findings = run_audit(root)
        assert _rules(findings) == ["tests.missing-slow-marker"]
        assert "10 cell(s)" in findings[0].detail

    def test_marked_variants_pass(self, tmp_path):
        root = _tree(tmp_path)
        marked = self.HEAVY.replace(
            "def test_heavy():",
            "@pytest.mark.slow\ndef test_heavy():",
        )
        _write(root, "tests/test_marked.py", marked)
        _write(
            root, "tests/test_module_marked.py",
            "import pytest\npytestmark = pytest.mark.slow\n" + self.HEAVY,
        )
        assert run_audit(root) == []

    def test_small_grid_with_small_duration_passes(self, tmp_path):
        root = _tree(tmp_path)
        _write(root, "tests/test_light.py", """\
            from repro.scenarios import ScenarioSpec, SweepRunner

            def test_light():
                base = ScenarioSpec(scenario="x", duration=1.0)
                SweepRunner(base, {"a": [1, 2, 3, 4]}).run()
            """)
        assert run_audit(root) == []

    def test_huge_grid_flagged_even_without_duration(self, tmp_path):
        root = _tree(tmp_path)
        _write(root, "tests/test_wide.py", """\
            from repro.scenarios import SweepRunner

            def test_wide(base):
                grid = {"a": list(range(2)), "b": [1] * 3}
                SweepRunner(base, {
                    "a": [1, 2, 3, 4, 5, 6, 7, 8],
                    "b": [1, 2, 3, 4, 5, 6, 7, 8],
                    "c": [1, 2, 3, 4],
                }).run()
            """)
        findings = run_audit(root)
        assert _rules(findings) == ["tests.missing-slow-marker"]


# -------------------------------------------------------- baseline + CLI gate


class TestBaselineGate:
    def _violating_tree(self, tmp_path):
        root = _tree(tmp_path)
        _write(root, "src/repro/sim/probe.py", """\
            import time

            def sample():
                return time.time()
            """)
        return root

    def test_update_then_gate(self, tmp_path, capsys):
        root = self._violating_tree(tmp_path)
        assert audit_main(["--root", str(root)]) == 1
        capsys.readouterr()

        assert audit_main(["--root", str(root), "--update-baseline"]) == 0
        capsys.readouterr()
        # baselined: plain runs are clean...
        assert audit_main(["--root", str(root)]) == 0
        capsys.readouterr()
        # ...but the gate rejects the entry until someone justifies it.
        assert audit_main(["--root", str(root), "--check-baseline"]) == 1
        assert "no justification" in capsys.readouterr().out

        baseline_path = root / "audit_baseline.json"
        payload = json.loads(baseline_path.read_text())
        for entry in payload["findings"]:
            entry["justification"] = "legacy probe; tracked in ROADMAP"
        baseline_path.write_text(json.dumps(payload))
        assert audit_main(["--root", str(root), "--check-baseline"]) == 0

    def test_stale_entries_warn_but_pass(self, tmp_path, capsys):
        root = self._violating_tree(tmp_path)
        audit_main(["--root", str(root), "--update-baseline"])
        (root / "src/repro/sim/probe.py").write_text(
            "def sample():\n    return 0.0\n"
        )
        assert audit_main(["--root", str(root)]) == 0
        assert "stale" in capsys.readouterr().out

    def test_malformed_baseline_is_a_usage_error(self, tmp_path):
        root = self._violating_tree(tmp_path)
        (root / "audit_baseline.json").write_text("{not json")
        assert audit_main(["--root", str(root)]) == 2

    def test_bad_root_is_a_usage_error(self, tmp_path):
        assert audit_main(["--root", str(tmp_path / "nowhere")]) == 2


class TestSharedSchema:
    def test_audit_json_matches_shared_reader(self, tmp_path, capsys):
        root = _tree(tmp_path)
        _write(root, "src/repro/sim/probe.py", """\
            import time

            def sample():
                return time.time()
            """)
        assert audit_main(["--root", str(root), "--json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["tool"] == "tfrc-audit"
        records = read_findings(report)
        assert [r["rule"] for r in records] == ["determinism.wall-clock"]
        assert records[0]["path"] == "src/repro/sim/probe.py"
        assert records[0]["line"] == 4
        assert records[0]["severity"] == "error"

    def test_reader_rejects_schema_regressions(self):
        good = finding_record(rule="x.y", path="p", detail="d")
        assert read_findings([good]) == [good]
        with pytest.raises(ValueError):
            read_findings([{"rule": "x.y", "path": "p"}])  # no detail/line
        with pytest.raises(ValueError):
            read_findings({"findings": "nope"})


class TestRepoIsClean:
    def test_repo_smoke_audit_clean_against_committed_baseline(self, capsys):
        """The whole tree audits clean (zero non-baselined findings)."""
        assert audit_main(
            ["--root", str(REPO_ROOT), "--json", "--check-baseline"]
        ) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["findings"] == []
        assert report["unjustified_baseline"] == []

    def test_committed_baseline_entries_are_justified(self):
        payload = json.loads(
            (REPO_ROOT / "audit_baseline.json").read_text(encoding="utf-8")
        )
        for entry in payload["findings"]:
            assert str(entry.get("justification", "")).strip(), entry


# ---------------------------------------------- fabric regression (satellites)


@register_scenario("audit_probe")
def _audit_probe(spec: ScenarioSpec):
    return {"x": spec.extra.get("x", 0), "rtt": spec.topology.get("rtt", 0.0)}


class TestWallClockInvariance:
    def test_cached_cell_bytes_ignore_wall_clock(self, tmp_path, monkeypatch):
        """Satellite regression: no wall-clock value may reach cached cell
        results -- identical sweeps run under wildly different clocks must
        produce byte-identical cache entries."""
        base = ScenarioSpec(scenario="audit_probe", extra={"x": 1})

        def run_with_offset(offset: float, cache_dir: Path) -> bytes:
            real_time = time.time
            monkeypatch.setattr(
                time, "time", lambda: real_time() + offset
            )
            try:
                SweepRunner(
                    base, {"extra.x": [1, 2]}, cache_dir=str(cache_dir)
                ).run()
            finally:
                monkeypatch.setattr(time, "time", real_time)
            entries = sorted(cache_dir.glob("*.json"))
            assert len(entries) == 2
            return b"".join(p.read_bytes() for p in entries)

        first = run_with_offset(0.0, tmp_path / "a")
        second = run_with_offset(86_400.0, tmp_path / "b")
        assert first == second


class TestFaultStateWrites:
    def test_plan_dump_is_atomic_strict_json(self, tmp_path):
        """Satellite regression: the fault layer's own state file commits
        through the shared atomic helper (strict JSON, no tmp litter)."""
        plan = faults.FaultPlan(seed=3, rates={"worker_kill": 0.5})
        path = plan.dump(tmp_path / "plan.json")
        loaded = json.loads(path.read_text(encoding="utf-8"))
        assert loaded["seed"] == 3
        assert list(tmp_path.glob("*.tmp.*")) == []
        assert faults.FaultPlan.load(path).rates == {"worker_kill": 0.5}

    def test_fault_state_writes_bypass_the_fault_hook(self, tmp_path):
        """A plan that delays every atomic rename must not delay (or
        recursively re-enter) its own dump/log writes."""
        log_dir = tmp_path / "log"
        plan = faults.FaultPlan(
            seed=1,
            rates={"delayed_rename": 1.0, "worker_kill": 1.0},
            delay_seconds=30.0,
            log_dir=str(log_dir),
        )
        faults.install(plan)
        try:
            start = time.monotonic()
            plan.dump(tmp_path / "plan.json")
            assert plan.fires("worker_kill", "cell-1")  # writes a log record
            elapsed = time.monotonic() - start
        finally:
            faults.uninstall()
        assert elapsed < 5.0, "fault-layer state write hit its own fault hook"
        assert len(list(log_dir.glob("*.json"))) == 1
