"""``tfrc-audit``: per-rule fixtures (hit / suppressed / allowlisted),
the baseline gate, the shared findings schema, and the repo smoke test
asserting the tree is audit-clean against the committed baseline."""

import json
import time
from pathlib import Path
from textwrap import dedent

import pytest

from repro.analysis.audit import (
    AllowEntry,
    AuditConfig,
    run_audit,
    run_audit_report,
)
from repro.analysis.audit.cli import main as audit_main, rules_markdown
from repro.analysis.audit.records import finding_record, read_findings
from repro.scenarios import ScenarioSpec, SweepRunner, register_scenario
from repro.scenarios import faults

REPO_ROOT = Path(__file__).resolve().parents[1]


def _write(root: Path, rel: str, text: str) -> None:
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(dedent(text), encoding="utf-8")


def _rules(findings):
    return [f.rule for f in findings]


def _tree(tmp_path: Path) -> Path:
    (tmp_path / "src" / "repro").mkdir(parents=True, exist_ok=True)
    return tmp_path


# --------------------------------------------------------- determinism rules


class TestDeterminismRules:
    def test_wall_clock_hit_aliased_and_suppressed(self, tmp_path):
        root = _tree(tmp_path)
        _write(root, "src/repro/sim/probe.py", """\
            import time as t
            from datetime import datetime

            def sample():
                return t.time()

            def stamp():
                return datetime.now()

            def excused():
                return t.time()  # tfrc-audit: ignore[determinism.wall-clock] -- why
            """)
        findings = run_audit(root)
        assert _rules(findings) == ["determinism.wall-clock"] * 2
        assert findings[0].line == 5

    def test_wall_clock_allowlisted_in_rt_layer(self, tmp_path):
        root = _tree(tmp_path)
        _write(root, "src/repro/rt/pacer.py", """\
            import time

            def now():
                return time.time()
            """)
        assert run_audit(root) == []

    def test_global_rng_from_import_alias(self, tmp_path):
        root = _tree(tmp_path)
        _write(root, "src/repro/core/jitter.py", """\
            from random import choice
            import random

            def pick(xs):
                return choice(xs)

            def draw():
                return random.random()

            def seeded():
                return random.Random(7).random()  # instance: fine
            """)
        assert _rules(run_audit(root)) == ["determinism.global-rng"] * 2

    def test_unsorted_listdir_vs_sanitized(self, tmp_path):
        root = _tree(tmp_path)
        _write(root, "src/repro/net/walk.py", """\
            import os

            def bad(d):
                return [n for n in os.listdir(d)]

            def good(d):
                return sorted(os.listdir(d))

            def counted(p):
                return sum(1 for _ in p.glob("*.json"))

            def raw(p):
                for entry in p.iterdir():
                    yield entry
            """)
        findings = run_audit(root)
        assert _rules(findings) == ["determinism.unsorted-listdir"] * 2
        assert [f.line for f in findings] == [4, 13]

    def test_set_iteration(self, tmp_path):
        root = _tree(tmp_path)
        _write(root, "src/repro/tcp/order.py", """\
            def bad(xs):
                return [x for x in set(xs)]

            def worse(xs):
                return list(set(xs))

            def good(xs):
                return sorted(set(xs))
            """)
        assert _rules(run_audit(root)) == ["determinism.set-iteration"] * 2


# ------------------------------------------------------------- fs-protocol


class TestFsioRules:
    def test_raw_writes_flagged_outside_fsio(self, tmp_path):
        root = _tree(tmp_path)
        _write(root, "src/repro/scenarios/leaky.py", """\
            import json

            def save(path, payload):
                path.write_text("boom")
                with open(path, "w") as fh:
                    json.dump(payload, fh, allow_nan=False)
            """)
        assert _rules(run_audit(root)) == [
            "fsio.raw-write", "fsio.raw-write", "fsio.stream-dump",
        ]

    def test_blessed_module_and_suppression(self, tmp_path):
        root = _tree(tmp_path)
        _write(root, "src/repro/scenarios/_fsio.py", """\
            def atomic(path, text):
                with path.open("w") as fh:
                    fh.write(text)
            """)
        _write(root, "src/repro/scenarios/torn.py", """\
            def tear(path):
                # tfrc-audit: ignore[fsio] -- deliberately torn
                with path.open("w") as fh:
                    fh.write("ha")
            """)
        assert run_audit(root) == []

    def test_append_mode_is_not_a_content_write(self, tmp_path):
        root = _tree(tmp_path)
        _write(root, "src/repro/scenarios/clock.py", """\
            def touch(sentinel):
                with sentinel.open("a"):
                    pass
            """)
        assert run_audit(root) == []


# ------------------------------------------------------------ cache contract


class TestCacheRules:
    def test_non_finite_in_registered_scenario(self, tmp_path):
        root = _tree(tmp_path)
        _write(root, "src/repro/experiments/figx.py", """\
            import math
            from repro.scenarios import register_scenario

            @register_scenario("figx_cell")
            def run(spec):
                return {"metric": float("nan"), "bound": math.inf}

            def helper():
                return float("inf")  # not a scenario function: fine
            """)
        findings = run_audit(root)
        assert _rules(findings) == ["cache.non-finite-literal"] * 2

    def test_lenient_json_dump(self, tmp_path):
        root = _tree(tmp_path)
        _write(root, "src/repro/wire/export.py", """\
            import json

            def bad(d):
                return json.dumps(d)

            def good(d):
                return json.dumps(d, allow_nan=False)
            """)
        assert _rules(run_audit(root)) == ["cache.lenient-json-dump"]


# -------------------------------------------------------- registry coherence


class TestRegistryRules:
    def test_duplicate_scenario(self, tmp_path):
        root = _tree(tmp_path)
        _write(root, "src/repro/scenarios/dupes.py", """\
            from repro.scenarios.spec import register_scenario

            @register_scenario("twice")
            def a(spec):
                return {}

            @register_scenario("twice")
            def b(spec):
                return {}
            """)
        assert _rules(run_audit(root)) == ["registry.duplicate-scenario"]

    def test_executor_name_drift_all_directions(self, tmp_path):
        root = _tree(tmp_path)
        _write(root, "src/repro/scenarios/executors.py", """\
            EXECUTOR_NAMES = ("serial", "ghost")

            class SweepExecutor:
                name = "abstract"

            class SerialExecutor(SweepExecutor):
                name = "serial"

            class RogueExecutor(SweepExecutor):
                name = "rogue"

            def resolve(executor):
                if executor == "bogus":
                    return None
            """)
        _write(root, "src/repro/experiments/runner.py", """\
            def build(parser):
                parser.add_argument("--executor", choices=("serial",))
            """)
        rules = _rules(run_audit(root))
        assert rules.count("registry.executor-name-drift") == 4
        details = [f.detail for f in run_audit(root)]
        assert any("'ghost'" in d for d in details)  # listed, unclaimed
        assert any("'rogue'" in d for d in details)  # claimed, unlisted
        assert any("'bogus'" in d for d in details)  # compared, unknown
        assert any("choices" in d for d in details)  # CLI not on the table

    def test_executor_tables_in_agreement(self, tmp_path):
        root = _tree(tmp_path)
        _write(root, "src/repro/scenarios/executors.py", """\
            EXECUTOR_NAMES = ("serial",)

            class SweepExecutor:
                name = "abstract"

            class SerialExecutor(SweepExecutor):
                name = "serial"

            def resolve(executor):
                if executor == "serial":
                    return SerialExecutor()
            """)
        _write(root, "src/repro/experiments/runner.py", """\
            from repro.scenarios.executors import EXECUTOR_NAMES

            def build(parser):
                parser.add_argument("--executor", choices=EXECUTOR_NAMES)
            """)
        assert run_audit(root) == []

    def test_unregistered_scenario_ref_and_constant_resolution(self, tmp_path):
        root = _tree(tmp_path)
        _write(root, "src/repro/scenarios/cells.py", """\
            from repro.scenarios.spec import register_scenario

            GRID_NAME = "grid_cell"

            @register_scenario(GRID_NAME)
            def run(spec):
                return {}
            """)
        _write(root, "src/repro/experiments/use.py", """\
            from repro.scenarios import ScenarioSpec

            def good():
                return ScenarioSpec(scenario="grid_cell")

            def bad():
                return ScenarioSpec(scenario="grid_cel")
            """)
        findings = run_audit(root)
        assert _rules(findings) == ["registry.unregistered-scenario-ref"]
        assert "grid_cel" in findings[0].detail


# --------------------------------------------------------- test-tier hygiene


class TestTestTierRules:
    HEAVY = dedent("""\
        import pytest
        from repro.scenarios import ScenarioSpec, SweepRunner

        def test_heavy():
            base = ScenarioSpec(scenario="x", duration=120.0)
            SweepRunner(base, {"a": [1, 2, 3, 4, 5], "b": [1, 2]}).run()
        """)

    def test_unmarked_heavy_test_flagged(self, tmp_path):
        root = _tree(tmp_path)
        _write(root, "tests/test_heavy.py", self.HEAVY)
        findings = run_audit(root)
        assert _rules(findings) == ["tests.missing-slow-marker"]
        assert "10 cell(s)" in findings[0].detail

    def test_marked_variants_pass(self, tmp_path):
        root = _tree(tmp_path)
        marked = self.HEAVY.replace(
            "def test_heavy():",
            "@pytest.mark.slow\ndef test_heavy():",
        )
        _write(root, "tests/test_marked.py", marked)
        _write(
            root, "tests/test_module_marked.py",
            "import pytest\npytestmark = pytest.mark.slow\n" + self.HEAVY,
        )
        assert run_audit(root) == []

    def test_small_grid_with_small_duration_passes(self, tmp_path):
        root = _tree(tmp_path)
        _write(root, "tests/test_light.py", """\
            from repro.scenarios import ScenarioSpec, SweepRunner

            def test_light():
                base = ScenarioSpec(scenario="x", duration=1.0)
                SweepRunner(base, {"a": [1, 2, 3, 4]}).run()
            """)
        assert run_audit(root) == []

    def test_huge_grid_flagged_even_without_duration(self, tmp_path):
        root = _tree(tmp_path)
        _write(root, "tests/test_wide.py", """\
            from repro.scenarios import SweepRunner

            def test_wide(base):
                grid = {"a": list(range(2)), "b": [1] * 3}
                SweepRunner(base, {
                    "a": [1, 2, 3, 4, 5, 6, 7, 8],
                    "b": [1, 2, 3, 4, 5, 6, 7, 8],
                    "c": [1, 2, 3, 4],
                }).run()
            """)
        findings = run_audit(root)
        assert _rules(findings) == ["tests.missing-slow-marker"]


# ----------------------------------------------------------- twin congruence


class TestTwinRules:
    def test_trace_equal_pair_is_clean(self, tmp_path):
        root = _tree(tmp_path)
        _write(root, "src/repro/net/twinmod.py", """\
            import numpy as np

            def clamp(lo, x):
                if x < lo:
                    return lo
                return x

            # tfrc-audit: twin-of repro.net.twinmod.clamp
            def clamp_vec(lo, x):
                return np.where(x < lo, lo, x)
            """)
        assert run_audit(root) == []

    def test_operand_reorder_diverges(self, tmp_path):
        root = _tree(tmp_path)
        _write(root, "src/repro/net/twinmod.py", """\
            import numpy as np

            def scale(a, b, c):
                return a / b * c

            # tfrc-audit: twin-of repro.net.twinmod.scale
            def scale_vec(a, b, c):
                return a * c / b
            """)
        findings = run_audit(root)
        assert _rules(findings) == ["twin.op-divergence"]
        assert "diverge at" in findings[0].detail

    def test_np_sum_substitution_flagged_twice(self, tmp_path):
        root = _tree(tmp_path)
        _write(root, "src/repro/net/twinmod.py", """\
            import numpy as np

            def total(xs):
                total = 0.0
                for x in xs:
                    total += x
                return total

            # tfrc-audit: twin-of repro.net.twinmod.total
            def total_vec(xs):
                return np.sum(xs, axis=1)
            """)
        rules = set(_rules(run_audit(root)))
        assert rules == {"twin.nonassoc-reduction", "twin.op-divergence"}

    def test_fast_path_guard_must_match_specialization(self, tmp_path):
        root = _tree(tmp_path)
        _write(root, "src/repro/net/guardmod.py", """\
            import numpy as np

            def pick(lo, x):
                if x < lo:
                    return lo
                return x

            # tfrc-audit: twin-of repro.net.guardmod.pick
            def pick_vec(lo, x):
                below = x < lo
                if below.all():
                    return x
                return np.where(below, lo, x)
            """)
        findings = run_audit(root)
        assert _rules(findings) == ["twin.op-divergence"]
        assert "fast-path guard" in findings[0].detail

    def test_dtype_drift_in_runtime_mode_body(self, tmp_path):
        root = _tree(tmp_path)
        _write(root, "src/repro/net/twinmod.py", """\
            import numpy as np

            def narrow(x):
                return x

            # tfrc-audit: twin-of repro.net.twinmod.narrow [runtime] -- fuzzed elsewhere
            def narrow_vec(x):
                y = np.asarray(x, dtype="float32")
                return y.astype(np.float16)
            """)
        assert _rules(run_audit(root)) == ["twin.dtype-drift"] * 2

    def test_forbidden_ops(self, tmp_path):
        root = _tree(tmp_path)
        _write(root, "src/repro/net/twinmod.py", """\
            import numpy as np

            def dist(x, y):
                return np.where(x < y, y, x)

            # tfrc-audit: twin-of repro.net.twinmod.dist [runtime] -- fuzzed elsewhere
            def dist_vec(x, y):
                h = np.hypot(x, y)
                return h ** 2.0
            """)
        assert _rules(run_audit(root)) == ["twin.forbidden-op"] * 2

    def test_unregistered_vec_flagged_and_suppressible(self, tmp_path):
        root = _tree(tmp_path)
        _write(root, "src/repro/net/loose.py", """\
            def helper_vec(x):
                return x
            """)
        findings = run_audit(root)
        assert _rules(findings) == ["twin.unregistered-twin"]
        _write(root, "src/repro/net/loose.py", """\
            # tfrc-audit: ignore[twin.unregistered-twin] -- not a kernel twin
            def helper_vec(x):
                return x
            """)
        assert run_audit(root) == []

    def test_runtime_mode_needs_a_reason(self, tmp_path):
        root = _tree(tmp_path)
        _write(root, "src/repro/net/twinmod.py", """\
            def f(x):
                return x

            # tfrc-audit: twin-of repro.net.twinmod.f [runtime]
            def f_vec(x):
                return x
            """)
        findings = run_audit(root)
        rules = _rules(findings)
        # the malformed declaration does not register the pair, so the
        # suffix check fires too
        assert rules == ["twin.unregistered-twin"] * 2
        assert any("reason" in f.detail for f in findings)

    def test_twins_table_registers_and_checks_keys(self, tmp_path):
        root = _tree(tmp_path)
        _write(root, "src/repro/sim/batch.py", """\
            def step(x):
                return x + 1.0

            TWINS = {
                "step_vector": ("repro.sim.batch.step", "trace"),
                "ghost_vector": ("repro.sim.batch.step", "runtime"),
            }

            def step_vector(x):
                return x + 1.0
            """)
        findings = run_audit(root)
        assert _rules(findings) == ["twin.unregistered-twin"]
        assert "ghost_vector" in findings[0].detail

    def test_missing_scalar_target(self, tmp_path):
        root = _tree(tmp_path)
        _write(root, "src/repro/net/twinmod.py", """\
            # tfrc-audit: twin-of repro.net.nowhere.gone
            def lost_vec(x):
                return x
            """)
        findings = run_audit(root)
        assert _rules(findings) == ["twin.unregistered-twin"]
        assert "not found" in findings[0].detail

    def test_docstring_mention_is_not_a_declaration(self, tmp_path):
        root = _tree(tmp_path)
        _write(root, "src/repro/net/docs.py", '''\
            """Explains the syntax:

                # tfrc-audit: twin-of repro.net.redmath.red_drop_probability

            without declaring anything."""
            ''')
        assert run_audit(root) == []


# ----------------------------------------------------------- stale allowlist


class TestStaleAllowlist:
    def _config(self, *entries):
        return AuditConfig(allowlist=tuple(entries))

    def test_entry_matching_no_file_is_stale(self, tmp_path):
        root = _tree(tmp_path)
        _write(root, "src/repro/sim/ok.py", "X = 1.0\n")
        report = run_audit_report(root, self._config(
            AllowEntry("src/repro/nowhere/", ("determinism",), "why"),
        ))
        assert len(report.stale_allowlist) == 1
        assert "matches no scanned file" in report.stale_allowlist[0]

    def test_entry_suppressing_nothing_is_stale(self, tmp_path):
        root = _tree(tmp_path)
        _write(root, "src/repro/sim/ok.py", "X = 1.0\n")
        report = run_audit_report(root, self._config(
            AllowEntry("src/repro/sim/", ("determinism",), "why"),
        ))
        assert len(report.stale_allowlist) == 1
        assert "suppresses no finding" in report.stale_allowlist[0]

    def test_live_entry_is_not_stale(self, tmp_path):
        root = _tree(tmp_path)
        _write(root, "src/repro/sim/probe.py", """\
            import time

            def sample():
                return time.time()
            """)
        report = run_audit_report(root, self._config(
            AllowEntry("src/repro/sim/", ("determinism",), "why"),
        ))
        assert report.findings == []
        assert report.stale_allowlist == []

    def test_cli_warns_only_under_check_baseline(self, tmp_path, capsys):
        root = _tree(tmp_path)
        _write(root, "src/repro/sim/ok.py", "X = 1.0\n")
        # the default allowlist's entries match none of this tiny tree
        assert audit_main(["--root", str(root)]) == 0
        assert "stale allowlist" not in capsys.readouterr().out
        assert audit_main(["--root", str(root), "--check-baseline"]) == 0
        assert "stale allowlist" in capsys.readouterr().out


# ------------------------------------------------------------ --paths mode


class TestPathsMode:
    def _two_file_tree(self, tmp_path):
        root = _tree(tmp_path)
        for name in ("a", "b"):
            _write(root, f"src/repro/sim/{name}.py", """\
                import time

                def sample():
                    return time.time()
                """)
        return root

    def test_file_checkers_restricted_to_paths(self, tmp_path):
        root = self._two_file_tree(tmp_path)
        report = run_audit_report(root, paths=["src/repro/sim/a.py"])
        assert [f.path for f in report.findings] == ["src/repro/sim/a.py"]
        assert report.restricted
        assert report.stale_allowlist == []

    def test_project_checkers_still_scan_whole_tree(self, tmp_path):
        root = self._two_file_tree(tmp_path)
        _write(root, "src/repro/scenarios/executors.py", """\
            EXECUTOR_NAMES = ("serial", "ghost")

            class SweepExecutor:
                name = "abstract"

            class SerialExecutor(SweepExecutor):
                name = "serial"
            """)
        report = run_audit_report(root, paths=["src/repro/sim/a.py"])
        rules = [f.rule for f in report.findings]
        assert "registry.executor-name-drift" in rules  # unlisted file

    def test_cli_paths_run(self, tmp_path, capsys):
        root = self._two_file_tree(tmp_path)
        assert audit_main(
            ["--root", str(root), "--paths", "src/repro/sim/a.py"]
        ) == 1
        out = capsys.readouterr().out
        assert "src/repro/sim/a.py" in out
        assert "src/repro/sim/b.py" not in out

    def test_paths_conflicts_with_update_baseline(self, tmp_path):
        root = self._two_file_tree(tmp_path)
        assert audit_main(
            ["--root", str(root), "--update-baseline",
             "--paths", "src/repro/sim/a.py"]
        ) == 2

    def test_paths_mode_does_not_report_stale_baseline(self, tmp_path, capsys):
        root = self._two_file_tree(tmp_path)
        assert audit_main(["--root", str(root), "--update-baseline"]) == 0
        (root / "src/repro/sim/b.py").write_text("X = 1.0\n")
        capsys.readouterr()
        # b's baselined finding is gone, but a partial run cannot know that
        assert audit_main(
            ["--root", str(root), "--paths", "src/repro/sim/a.py"]
        ) == 0
        assert "stale" not in capsys.readouterr().out


# --------------------------------------------------- GitHub Actions rendering


class TestAnnotationsOutput:
    def test_error_annotation_per_finding(self, tmp_path, capsys):
        root = _tree(tmp_path)
        _write(root, "src/repro/sim/probe.py", """\
            import time

            def sample():
                return time.time()
            """)
        assert audit_main(["--root", str(root), "--annotations"]) == 1
        out = capsys.readouterr().out
        assert (
            "::error file=src/repro/sim/probe.py,line=4,"
            "title=tfrc-audit determinism.wall-clock::" in out
        )

    def test_clean_tree_emits_no_annotations(self, tmp_path, capsys):
        root = _tree(tmp_path)
        _write(root, "src/repro/sim/ok.py", "X = 1.0\n")
        assert audit_main(["--root", str(root), "--annotations"]) == 0
        assert "::error" not in capsys.readouterr().out


# ----------------------------------------------------------- rule-table sync


class TestRulesDocSync:
    def test_readme_rule_table_is_generated(self):
        readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        begin = "<!-- tfrc-audit-rules:begin"
        end = "<!-- tfrc-audit-rules:end -->"
        assert begin in readme and end in readme, (
            "README must embed the generated rule table between "
            "tfrc-audit-rules markers"
        )
        start = readme.index(begin)
        start = readme.index("\n", start) + 1
        embedded = readme[start:readme.index(end)].strip()
        assert embedded == rules_markdown().strip(), (
            "README rule table drifted; paste the output of "
            "`tfrc-audit --rules-markdown` between the markers"
        )

    def test_cli_rules_markdown_flag(self, capsys):
        assert audit_main(["--rules-markdown"]) == 0
        out = capsys.readouterr().out
        assert out == rules_markdown()
        assert "`twin.op-divergence`" in out

    def test_rules_alias_lists_rules(self, capsys):
        assert audit_main(["--rules"]) == 0
        assert "twin.unregistered-twin" in capsys.readouterr().out


# -------------------------------------------------------- baseline + CLI gate


class TestBaselineGate:
    def _violating_tree(self, tmp_path):
        root = _tree(tmp_path)
        _write(root, "src/repro/sim/probe.py", """\
            import time

            def sample():
                return time.time()
            """)
        return root

    def test_update_then_gate(self, tmp_path, capsys):
        root = self._violating_tree(tmp_path)
        assert audit_main(["--root", str(root)]) == 1
        capsys.readouterr()

        assert audit_main(["--root", str(root), "--update-baseline"]) == 0
        capsys.readouterr()
        # baselined: plain runs are clean...
        assert audit_main(["--root", str(root)]) == 0
        capsys.readouterr()
        # ...but the gate rejects the entry until someone justifies it.
        assert audit_main(["--root", str(root), "--check-baseline"]) == 1
        assert "no justification" in capsys.readouterr().out

        baseline_path = root / "audit_baseline.json"
        payload = json.loads(baseline_path.read_text())
        for entry in payload["findings"]:
            entry["justification"] = "legacy probe; tracked in ROADMAP"
        baseline_path.write_text(json.dumps(payload))
        assert audit_main(["--root", str(root), "--check-baseline"]) == 0

    def test_stale_entries_warn_but_pass(self, tmp_path, capsys):
        root = self._violating_tree(tmp_path)
        audit_main(["--root", str(root), "--update-baseline"])
        (root / "src/repro/sim/probe.py").write_text(
            "def sample():\n    return 0.0\n"
        )
        assert audit_main(["--root", str(root)]) == 0
        assert "stale" in capsys.readouterr().out

    def test_malformed_baseline_is_a_usage_error(self, tmp_path):
        root = self._violating_tree(tmp_path)
        (root / "audit_baseline.json").write_text("{not json")
        assert audit_main(["--root", str(root)]) == 2

    def test_bad_root_is_a_usage_error(self, tmp_path):
        assert audit_main(["--root", str(tmp_path / "nowhere")]) == 2


class TestSharedSchema:
    def test_audit_json_matches_shared_reader(self, tmp_path, capsys):
        root = _tree(tmp_path)
        _write(root, "src/repro/sim/probe.py", """\
            import time

            def sample():
                return time.time()
            """)
        assert audit_main(["--root", str(root), "--json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["tool"] == "tfrc-audit"
        records = read_findings(report)
        assert [r["rule"] for r in records] == ["determinism.wall-clock"]
        assert records[0]["path"] == "src/repro/sim/probe.py"
        assert records[0]["line"] == 4
        assert records[0]["severity"] == "error"

    def test_reader_rejects_schema_regressions(self):
        good = finding_record(rule="x.y", path="p", detail="d")
        assert read_findings([good]) == [good]
        with pytest.raises(ValueError):
            read_findings([{"rule": "x.y", "path": "p"}])  # no detail/line
        with pytest.raises(ValueError):
            read_findings({"findings": "nope"})


class TestRepoIsClean:
    def test_repo_smoke_audit_clean_against_committed_baseline(self, capsys):
        """The whole tree audits clean (zero non-baselined findings)."""
        assert audit_main(
            ["--root", str(REPO_ROOT), "--json", "--check-baseline"]
        ) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["findings"] == []
        assert report["unjustified_baseline"] == []
        assert report["stale_allowlist"] == []

    def test_committed_baseline_entries_are_justified(self):
        payload = json.loads(
            (REPO_ROOT / "audit_baseline.json").read_text(encoding="utf-8")
        )
        for entry in payload["findings"]:
            assert str(entry.get("justification", "")).strip(), entry


# ---------------------------------------------- fabric regression (satellites)


@register_scenario("audit_probe")
def _audit_probe(spec: ScenarioSpec):
    return {"x": spec.extra.get("x", 0), "rtt": spec.topology.get("rtt", 0.0)}


class TestWallClockInvariance:
    def test_cached_cell_bytes_ignore_wall_clock(self, tmp_path, monkeypatch):
        """Satellite regression: no wall-clock value may reach cached cell
        results -- identical sweeps run under wildly different clocks must
        produce byte-identical cache entries."""
        base = ScenarioSpec(scenario="audit_probe", extra={"x": 1})

        def run_with_offset(offset: float, cache_dir: Path) -> bytes:
            real_time = time.time
            monkeypatch.setattr(
                time, "time", lambda: real_time() + offset
            )
            try:
                SweepRunner(
                    base, {"extra.x": [1, 2]}, cache_dir=str(cache_dir)
                ).run()
            finally:
                monkeypatch.setattr(time, "time", real_time)
            entries = sorted(cache_dir.glob("*.json"))
            assert len(entries) == 2
            return b"".join(p.read_bytes() for p in entries)

        first = run_with_offset(0.0, tmp_path / "a")
        second = run_with_offset(86_400.0, tmp_path / "b")
        assert first == second


class TestFaultStateWrites:
    def test_plan_dump_is_atomic_strict_json(self, tmp_path):
        """Satellite regression: the fault layer's own state file commits
        through the shared atomic helper (strict JSON, no tmp litter)."""
        plan = faults.FaultPlan(seed=3, rates={"worker_kill": 0.5})
        path = plan.dump(tmp_path / "plan.json")
        loaded = json.loads(path.read_text(encoding="utf-8"))
        assert loaded["seed"] == 3
        assert list(tmp_path.glob("*.tmp.*")) == []
        assert faults.FaultPlan.load(path).rates == {"worker_kill": 0.5}

    def test_fault_state_writes_bypass_the_fault_hook(self, tmp_path):
        """A plan that delays every atomic rename must not delay (or
        recursively re-enter) its own dump/log writes."""
        log_dir = tmp_path / "log"
        plan = faults.FaultPlan(
            seed=1,
            rates={"delayed_rename": 1.0, "worker_kill": 1.0},
            delay_seconds=30.0,
            log_dir=str(log_dir),
        )
        faults.install(plan)
        try:
            start = time.monotonic()
            plan.dump(tmp_path / "plan.json")
            assert plan.fires("worker_kill", "cell-1")  # writes a log record
            elapsed = time.monotonic() - start
        finally:
            faults.uninstall()
        assert elapsed < 5.0, "fault-layer state write hit its own fault hook"
        assert len(list(log_dir.glob("*.json"))) == 1
