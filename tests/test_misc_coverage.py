"""Coverage for smaller behaviours not exercised elsewhere."""

import pytest

from repro.experiments import fig06_fairness_grid as fig06
from repro.experiments import fig14_queue_dynamics as fig14
from repro.net.path import LossyPath, periodic_loss
from repro.sim.engine import Simulator
from repro.tcp.flow import TcpFlow


class TestDelayedAckFlow:
    def test_end_to_end_with_delayed_acks(self):
        sim = Simulator()
        forward = LossyPath(sim, delay=0.05)
        reverse = LossyPath(sim, delay=0.05)
        received = []
        flow = TcpFlow(
            sim, "t", forward, reverse, variant="sack", delayed_ack=True,
            on_data=lambda t, p: received.append(p.seq),
        )
        flow.start()
        sim.run(until=5.0)
        assert len(received) > 50
        # Delayed ACKs: roughly one ACK per two data packets.
        assert flow.sink.acks_sent < 0.8 * flow.sink.packets_received

    def test_delayed_ack_slows_window_growth(self):
        def run(delayed):
            sim = Simulator()
            forward = LossyPath(sim, delay=0.05)
            reverse = LossyPath(sim, delay=0.05)
            flow = TcpFlow(sim, "t", forward, reverse, delayed_ack=delayed,
                           initial_ssthresh=10_000)
            flow.start()
            sim.run(until=1.0)
            return flow.sender.cwnd

        assert run(delayed=True) < run(delayed=False)


class TestVariantRelativeBehaviour:
    def test_sack_beats_tahoe_under_burst_loss(self):
        """SACK repairs multi-loss windows without collapsing to cwnd=1;
        Tahoe restarts from scratch every time."""

        def run(variant):
            sim = Simulator()
            drop = {"pending": set(range(60, 75, 2))}

            def burst(packet, now):
                if packet.is_data and packet.seq in drop["pending"]:
                    drop["pending"].discard(packet.seq)
                    return True
                return False

            forward = LossyPath(sim, delay=0.05, loss_model=burst)
            reverse = LossyPath(sim, delay=0.05)
            received = []
            flow = TcpFlow(sim, "t", forward, reverse, variant=variant,
                           on_data=lambda t, p: received.append(p.seq))
            flow.start()
            sim.run(until=10.0)
            return len(received)

        assert run("sack") >= run("tahoe")


class TestExperimentValidation:
    def test_fig06_odd_flow_count_rejected(self):
        with pytest.raises(ValueError):
            fig06.run_cell(15e6, 3, "red", duration=1.0)

    def test_fig14_unknown_protocol_rejected(self):
        with pytest.raises(ValueError):
            fig14.run_one("udp")

    def test_fig06_cell_lookup(self):
        result = fig06.Fig06Result(cells=[])
        with pytest.raises(KeyError):
            result.cell(15e6, 32, "red")
