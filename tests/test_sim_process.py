"""Unit tests for timers and periodic processes."""

from repro.sim.engine import Simulator
from repro.sim.process import PeriodicProcess, Timer


class TestTimer:
    def test_fires_after_interval(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(1.5)
        sim.run()
        assert fired == [1.5]

    def test_restart_pushes_back(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(1.0)
        sim.schedule(0.5, lambda: timer.restart(1.0))
        sim.run()
        assert fired == [1.5]

    def test_cancel_prevents_fire(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(1))
        timer.start(1.0)
        timer.cancel()
        sim.run()
        assert fired == []

    def test_pending_and_expiry(self):
        sim = Simulator()
        timer = Timer(sim, lambda: None)
        assert not timer.pending
        assert timer.expiry is None
        timer.start(2.0)
        assert timer.pending
        assert timer.expiry == 2.0
        sim.run()
        assert not timer.pending

    def test_can_rearm_from_callback(self):
        sim = Simulator()
        fired = []

        def on_fire():
            fired.append(sim.now)
            if len(fired) < 3:
                timer.start(1.0)

        timer = Timer(sim, on_fire)
        timer.start(1.0)
        sim.run()
        assert fired == [1.0, 2.0, 3.0]

    def test_cancel_idempotent(self):
        sim = Simulator()
        timer = Timer(sim, lambda: None)
        timer.cancel()
        timer.start(1.0)
        timer.cancel()
        timer.cancel()
        sim.run()
        assert not timer.pending


class TestPeriodicProcess:
    def test_ticks_at_fixed_interval(self):
        sim = Simulator()
        ticks = []
        proc = PeriodicProcess(sim, lambda: ticks.append(sim.now), lambda: 1.0)
        proc.start()
        sim.run(until=3.5)
        assert ticks == [0.0, 1.0, 2.0, 3.0]

    def test_initial_delay(self):
        sim = Simulator()
        ticks = []
        proc = PeriodicProcess(sim, lambda: ticks.append(sim.now), lambda: 1.0)
        proc.start(initial_delay=0.5)
        sim.run(until=2.6)
        assert ticks == [0.5, 1.5, 2.5]

    def test_stop(self):
        sim = Simulator()
        ticks = []
        proc = PeriodicProcess(sim, lambda: ticks.append(sim.now), lambda: 1.0)
        proc.start()
        sim.schedule(1.5, proc.stop)
        sim.run(until=5.0)
        assert ticks == [0.0, 1.0]

    def test_interval_fn_none_terminates(self):
        sim = Simulator()
        ticks = []
        intervals = iter([1.0, 1.0, None])
        proc = PeriodicProcess(
            sim, lambda: ticks.append(sim.now), lambda: next(intervals)
        )
        proc.start()
        sim.run(until=10.0)
        assert ticks == [0.0, 1.0, 2.0]
        assert not proc.running

    def test_variable_intervals(self):
        sim = Simulator()
        ticks = []
        intervals = iter([0.5, 1.5, 0.25])
        proc = PeriodicProcess(
            sim, lambda: ticks.append(sim.now), lambda: next(intervals, None)
        )
        proc.start()
        sim.run(until=10.0)
        assert ticks == [0.0, 0.5, 2.0, 2.25]

    def test_callback_may_stop_process(self):
        sim = Simulator()
        ticks = []

        def tick():
            ticks.append(sim.now)
            if len(ticks) == 2:
                proc.stop()

        proc = PeriodicProcess(sim, tick, lambda: 1.0)
        proc.start()
        sim.run(until=10.0)
        assert ticks == [0.0, 1.0]

    def test_start_idempotent(self):
        sim = Simulator()
        ticks = []
        proc = PeriodicProcess(sim, lambda: ticks.append(sim.now), lambda: 1.0)
        proc.start()
        proc.start()
        sim.run(until=1.5)
        assert ticks == [0.0, 1.0]
