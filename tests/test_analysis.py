"""Unit and property tests for the analysis layer."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.bernoulli import (
    consistent_loss_event_fraction,
    loss_event_fraction_analytic,
    packets_per_rtt_from_equation,
    simulate_loss_event_fraction,
)
from repro.analysis.cov import coefficient_of_variation, cov_vs_timescale
from repro.analysis.equivalence import (
    equivalence_ratio,
    equivalence_series,
    pairwise_equivalence,
)
from repro.analysis.predictor import (
    make_weights,
    predictor_errors,
    weighted_interval_predictor,
)
from repro.analysis.stats import confidence_interval, mean_and_ci, t_critical_90
from repro.analysis.timeseries import arrivals_to_rate_series, normalized_throughputs


class TestRateSeries:
    def test_binning(self):
        arrivals = [(0.1, 1000), (0.9, 1000), (1.5, 2000)]
        series = arrivals_to_rate_series(arrivals, 0.0, 2.0, 1.0)
        assert series.tolist() == [2000.0, 2000.0]

    def test_events_outside_window_ignored(self):
        arrivals = [(-1.0, 500), (0.5, 1000), (9.0, 500)]
        series = arrivals_to_rate_series(arrivals, 0.0, 2.0, 1.0)
        assert series.tolist() == [1000.0, 0.0]

    def test_rate_units_bytes_per_second(self):
        arrivals = [(0.25, 100)]
        series = arrivals_to_rate_series(arrivals, 0.0, 0.5, 0.5)
        assert series.tolist() == [200.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            arrivals_to_rate_series([], 0, 1, 0)
        with pytest.raises(ValueError):
            arrivals_to_rate_series([], 1, 0, 0.1)
        with pytest.raises(ValueError):
            arrivals_to_rate_series([], 0, 0.1, 1.0)

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=9.99),
                st.integers(min_value=1, max_value=1500),
            ),
            max_size=100,
        )
    )
    @settings(max_examples=50)
    def test_total_bytes_conserved(self, arrivals):
        series = arrivals_to_rate_series(arrivals, 0.0, 10.0, 1.0)
        assert series.sum() * 1.0 == pytest.approx(sum(b for _, b in arrivals))

    def test_normalized_throughputs(self):
        result = normalized_throughputs(
            {"a": 12_500_000, "b": 25_000_000}, duration=10.0,
            link_bps=40e6, flow_count=2,
        )
        assert result["a"] == pytest.approx(0.5)
        assert result["b"] == pytest.approx(1.0)


class TestCov:
    def test_constant_series_zero(self):
        assert coefficient_of_variation([5, 5, 5]) == 0.0

    def test_empty_and_zero_series(self):
        assert coefficient_of_variation([]) == 0.0
        assert coefficient_of_variation([0, 0]) == 0.0

    def test_known_value(self):
        # [1, 3]: mean 2, population std 1 -> CoV 0.5
        assert coefficient_of_variation([1, 3]) == pytest.approx(0.5)

    def test_scale_invariance(self):
        base = [1.0, 2.0, 4.0, 3.0]
        assert coefficient_of_variation(base) == pytest.approx(
            coefficient_of_variation([10 * v for v in base])
        )

    def test_cov_decreases_with_timescale_for_bursty_flow(self):
        """Aggregating a bursty arrival process smooths it."""
        arrivals = [(t, 1000) for t in np.arange(0, 100, 0.5)][::2]  # bursty
        covs = cov_vs_timescale(arrivals, 0, 100, [0.5, 2.0, 10.0])
        assert covs[10.0] <= covs[0.5]

    @given(st.lists(st.floats(min_value=0.01, max_value=1e6), min_size=2, max_size=50))
    @settings(max_examples=50)
    def test_nonnegative(self, series):
        assert coefficient_of_variation(series) >= 0.0


class TestEquivalence:
    def test_identical_series_is_one(self):
        assert equivalence_ratio([1, 2, 3], [1, 2, 3]) == 1.0

    def test_factor_two_is_half(self):
        assert equivalence_ratio([2, 2], [4, 4]) == pytest.approx(0.5)

    def test_symmetry(self):
        a, b = [1, 5, 2], [3, 1, 2]
        assert equivalence_ratio(a, b) == pytest.approx(equivalence_ratio(b, a))

    def test_one_zero_counts_as_zero(self):
        series = equivalence_series([1, 0], [1, 1])
        assert series == [1.0, 0.0]

    def test_both_zero_excluded(self):
        series = equivalence_series([0, 1], [0, 1])
        assert series[0] is None
        assert equivalence_ratio([0, 1], [0, 1]) == 1.0

    def test_all_zero_is_nan(self):
        assert math.isnan(equivalence_ratio([0, 0], [0, 0]))

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            equivalence_ratio([1], [1, 2])

    def test_pairwise(self):
        series = {"a": [1, 1], "b": [1, 1], "c": [2, 2]}
        ratio = pairwise_equivalence(series, [("a", "b"), ("a", "c")])
        assert ratio == pytest.approx((1.0 + 0.5) / 2)

    @given(
        st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=30),
        st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=30),
    )
    @settings(max_examples=50)
    def test_bounded_zero_one(self, a, b):
        n = min(len(a), len(b))
        ratio = equivalence_ratio(a[:n], b[:n])
        assert math.isnan(ratio) or 0.0 <= ratio <= 1.0


class TestBernoulli:
    def test_zero_loss(self):
        assert loss_event_fraction_analytic(0.0, 10.0) == 0.0

    def test_n_of_one_is_identity(self):
        for p in (0.01, 0.1, 0.3):
            assert loss_event_fraction_analytic(p, 1.0) == pytest.approx(p)

    def test_event_fraction_below_loss_fraction(self):
        for p in (0.01, 0.05, 0.2):
            assert loss_event_fraction_analytic(p, 10.0) < p

    def test_monte_carlo_matches_analytic(self):
        p, n = 0.05, 6.0
        analytic = loss_event_fraction_analytic(p, n)
        simulated = simulate_loss_event_fraction(
            p, n, total_packets=400_000, rng=np.random.default_rng(1)
        )
        assert simulated == pytest.approx(analytic, rel=0.08)

    def test_consistent_fixed_point_stable(self):
        p_event = consistent_loss_event_fraction(0.05)
        n = max(1.0, packets_per_rtt_from_equation(p_event))
        assert loss_event_fraction_analytic(0.05, n) == pytest.approx(
            p_event, rel=1e-6
        )

    def test_faster_flow_has_lower_event_fraction(self):
        """Paper: 'the faster the sender transmits, the lower the
        loss-event fraction.'"""
        slow = consistent_loss_event_fraction(0.1, rate_multiplier=0.5)
        fast = consistent_loss_event_fraction(0.1, rate_multiplier=2.0)
        assert fast <= slow

    def test_validation(self):
        with pytest.raises(ValueError):
            loss_event_fraction_analytic(-0.1, 5)
        with pytest.raises(ValueError):
            loss_event_fraction_analytic(0.1, 0)


class TestPredictor:
    def test_constant_trace_predicts_exactly(self):
        mean_err, std_err = predictor_errors([100.0] * 30, history=8, decreasing=True)
        assert mean_err == pytest.approx(0.0, abs=1e-12)
        assert std_err == pytest.approx(0.0, abs=1e-12)

    def test_weights_shapes(self):
        assert make_weights(4, decreasing=False) == [1.0] * 4
        assert make_weights(8, decreasing=True) == pytest.approx(
            [1, 1, 1, 1, 0.8, 0.6, 0.4, 0.2]
        )
        odd = make_weights(5, decreasing=True)
        assert len(odd) == 5 and odd[0] == 1.0 and odd[-1] < 1.0

    def test_weighted_predictor_is_inverse_mean(self):
        assert weighted_interval_predictor([100, 100], [1, 1]) == pytest.approx(0.01)

    def test_longer_history_smooths_alternating_trace(self):
        trace = [50.0, 150.0] * 40
        short, _ = predictor_errors(trace, history=2, decreasing=False)
        long, _ = predictor_errors(trace, history=16, decreasing=False)
        assert long <= short + 1e-9

    def test_too_short_trace_raises(self):
        with pytest.raises(ValueError):
            predictor_errors([10.0] * 4, history=8, decreasing=True)


class TestStats:
    def test_t_table_matches_scipy(self):
        scipy_stats = pytest.importorskip("scipy.stats")
        for dof in (1, 5, 13, 29):
            expected = scipy_stats.t.ppf(0.95, dof)
            assert t_critical_90(dof) == pytest.approx(expected, abs=5e-3)

    def test_ci_zero_for_single_sample(self):
        assert confidence_interval([3.0]) == 0.0

    def test_ci_shrinks_with_samples(self):
        rng = np.random.default_rng(0)
        small = confidence_interval(rng.normal(0, 1, 4).tolist())
        large = confidence_interval(rng.normal(0, 1, 30).tolist())
        assert large < small

    def test_mean_and_ci(self):
        mean, ci = mean_and_ci([1.0, 2.0, 3.0])
        assert mean == pytest.approx(2.0)
        assert ci > 0

    def test_unsupported_level_rejected(self):
        with pytest.raises(ValueError):
            confidence_interval([1, 2], level=0.95)


class TestJainFairnessIndex:
    def test_equal_allocation_is_one(self):
        from repro.analysis.stats import jain_fairness_index

        assert jain_fairness_index([3.0, 3.0, 3.0, 3.0]) == pytest.approx(1.0)

    def test_single_hog_is_one_over_n(self):
        from repro.analysis.stats import jain_fairness_index

        assert jain_fairness_index([5.0, 0.0, 0.0, 0.0, 0.0]) == pytest.approx(0.2)

    def test_scale_invariant(self):
        from repro.analysis.stats import jain_fairness_index

        base = [1.0, 2.0, 3.0]
        assert jain_fairness_index(base) == pytest.approx(
            jain_fairness_index([x * 7.5 for x in base])
        )

    def test_all_zero_defined_as_fair(self):
        from repro.analysis.stats import jain_fairness_index

        assert jain_fairness_index([0.0, 0.0]) == 1.0

    def test_validation(self):
        from repro.analysis.stats import jain_fairness_index

        with pytest.raises(ValueError):
            jain_fairness_index([])
        with pytest.raises(ValueError):
            jain_fairness_index([1.0, -1.0])

    @given(values=st.lists(st.floats(0.0, 1e6), min_size=1, max_size=50))
    def test_bounded_by_one_over_n_and_one(self, values):
        from repro.analysis.stats import jain_fairness_index

        index = jain_fairness_index(values)
        assert 1.0 / len(values) - 1e-9 <= index <= 1.0 + 1e-9
