"""Port-equivalence: scenario-registered figures vs their pre-port glue.

PR 3 ported the remaining figure experiments onto the ``ScenarioSpec`` /
``SweepRunner`` subsystem.  These tests pin the port: for two of the ported
figures (2 and 20/21) the registered scenario must produce **byte-identical**
results to the hand-rolled glue it replaced (re-implemented inline here,
verbatim from the pre-port modules), and the results must survive the JSON
round-trip the sweep cache performs.

Also here: the SACK-recovery sanity check for the RFC 2018 block-ordering
fix -- recovery on the dumbbell must keep working (the SACK sender registers
blocks order-insensitively, so only the wire ordering changed).
"""

import json

from repro.experiments import fig02_loss_interval as fig02
from repro.experiments import fig20_halving as fig20
from repro.net.path import periodic_loss, scheduled_loss
from repro.scenarios import ScenarioSpec, run_scenario
from repro.scenarios.builders import run_single_tfrc_on_lossy_path


def _preport_fig02(duration=12.0, rtt=0.1, t_phase2=6.0, t_phase3=9.0,
                   probe_interval=0.1):
    """The pre-port Figure 2 glue, verbatim: hand-built scheduled loss and
    a probe appending to plain lists."""
    model = scheduled_loss(
        [
            (0.0, periodic_loss(100)),
            (t_phase2, periodic_loss(10)),
            (t_phase3, periodic_loss(200)),
        ]
    )
    series = {
        "times": [], "current_interval": [], "estimated_interval": [],
        "loss_event_rate": [], "tx_rate_bytes": [],
    }

    def probe(sim, flow):
        series["times"].append(sim.now)
        series["current_interval"].append(
            flow.receiver.detector.open_interval_packets()
        )
        series["estimated_interval"].append(
            flow.receiver.intervals.average_interval()
        )
        series["loss_event_rate"].append(flow.receiver.loss_event_rate())
        series["tx_rate_bytes"].append(flow.sender.rate)

    run_single_tfrc_on_lossy_path(
        loss_model=model, duration=duration, rtt=rtt,
        probe=probe, probe_interval=probe_interval,
    )
    return series


def _preport_fig20(initial_period=100, congested_period=2, onset=10.0,
                   duration=14.0, rtt=0.1):
    """The pre-port Figure 20 glue, verbatim."""
    model = scheduled_loss(
        [
            (0.0, periodic_loss(initial_period)),
            (onset, periodic_loss(congested_period)),
        ]
    )
    series = {"times": [], "rates": []}

    def probe(sim, flow):
        series["times"].append(sim.now)
        series["rates"].append(flow.sender.rate)

    run_single_tfrc_on_lossy_path(
        loss_model=model, duration=duration, rtt=rtt,
        probe=probe, probe_interval=rtt / 2.0,
    )
    return series


class TestFig02PortEquivalence:
    def test_scenario_matches_preport_glue_byte_identically(self):
        glue = _preport_fig02(duration=12.0)
        ported = fig02.run(duration=12.0)
        assert ported.times == glue["times"]
        assert ported.current_interval == glue["current_interval"]
        assert ported.estimated_interval == glue["estimated_interval"]
        assert ported.loss_event_rate == glue["loss_event_rate"]
        assert ported.tx_rate_bytes == glue["tx_rate_bytes"]

    def test_cell_result_survives_json_round_trip(self):
        """What the sweep cache stores must reload bit-for-bit."""
        spec = ScenarioSpec(
            scenario="fig02_loss_interval",
            duration=12.0,
            topology={"rtt": 0.1},
            loss={
                "model": "scheduled",
                "phases": [
                    {"at": 0.0, "model": "periodic", "period": 100, "offset": 0},
                    {"at": 6.0, "model": "periodic", "period": 10, "offset": 0},
                    {"at": 9.0, "model": "periodic", "period": 200, "offset": 0},
                ],
            },
            extra={"probe_interval": 0.1},
        )
        result = run_scenario(spec)
        assert json.loads(json.dumps(result)) == result


class TestFig20PortEquivalence:
    def test_scenario_matches_preport_glue_byte_identically(self):
        glue = _preport_fig20()
        ported = fig20.run()
        assert ported.times == glue["times"]
        assert ported.rates == glue["rates"]

    def test_sweep_matches_preport_serial_loop(self):
        """Figure 21's grid: every cell equals a direct pre-port run."""
        periods = (100, 10)
        sweep = fig20.run_sweep(initial_periods=periods, duration=12.0)
        for period, drop_rate, rtts in zip(
            periods, sweep.drop_rates, sweep.rtts_to_halve
        ):
            glue = _preport_fig20(initial_period=period, duration=12.0)
            glue_result = fig20.HalvingResult(
                times=glue["times"], rates=glue["rates"],
                onset=10.0, rtt=0.1,
            )
            assert drop_rate == 1.0 / period
            assert rtts == glue_result.rtts_to_halve()

    def test_parallel_cells_identical_to_serial(self):
        serial = fig20.run_sweep(initial_periods=(100, 10), duration=12.0)
        parallel = fig20.run_sweep(
            initial_periods=(100, 10), duration=12.0, parallel=2
        )
        assert serial.drop_rates == parallel.drop_rates
        assert serial.rtts_to_halve == parallel.rtts_to_halve

    def test_cache_round_trip_is_exact(self, tmp_path):
        live = fig20.run(duration=12.0, cache_dir=str(tmp_path))
        cached = fig20.run(duration=12.0, cache_dir=str(tmp_path))
        assert cached.times == live.times
        assert cached.rates == live.rates


class TestSackRecoveryOnDumbbell:
    """The RFC 2018 recency fix only reorders the blocks on the wire: the
    SACK sender's scoreboard is a set union over all blocks, so recovery
    must still work.  Drive a SACK TCP flow through a congested dumbbell
    and check it recovers losses without collapsing into timeouts."""

    def test_sack_recovery_still_progresses(self):
        from repro.net import Dumbbell, DumbbellConfig
        from repro.sim import Simulator
        from repro.tcp.flow import TcpFlow

        sim = Simulator()
        config = DumbbellConfig(
            bandwidth_bps=1.5e6, queue_type="droptail", buffer_packets=8
        )
        dumbbell = Dumbbell(sim, config)
        fwd, rev = dumbbell.attach_flow("tcp", 0.08)
        flow = TcpFlow(sim, "tcp", fwd, rev, variant="sack")
        flow.start()
        sim.run(until=30.0)
        sender = flow.sender
        # The shallow buffer forces drops; SACK fast recovery must repair
        # them (retransmissions without a timeout collapse) while still
        # delivering the large majority of packets.
        assert sender.retransmissions > 0
        assert sender.packets_sent > 1000
        assert sender.timeouts <= sender.retransmissions
        # Utilization sanity: the flow keeps the link busy.
        assert dumbbell.forward_link.packets_forwarded > 0.8 * sender.packets_sent
