"""Unit and property tests for serial-number arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.wire.seqnum import (
    SEQ_SPACE_BITS,
    seq_add,
    seq_diff,
    seq_gt,
    seq_gte,
    seq_lt,
    seq_lte,
    seq_window_iter,
)

MOD = 1 << SEQ_SPACE_BITS
HALF = MOD // 2

seqs = st.integers(min_value=0, max_value=MOD - 1)
small_deltas = st.integers(min_value=-(HALF - 1), max_value=HALF - 1)


class TestAdd:
    def test_simple(self):
        assert seq_add(5, 3) == 8

    def test_wraps_forward(self):
        assert seq_add(MOD - 1, 1) == 0

    def test_wraps_backward(self):
        assert seq_add(0, -1) == MOD - 1

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            seq_add(MOD, 1)
        with pytest.raises(ValueError):
            seq_add(-1, 1)

    def test_rejects_non_int(self):
        with pytest.raises(TypeError):
            seq_add(1.5, 1)


class TestDiff:
    def test_zero(self):
        assert seq_diff(7, 7) == 0

    def test_across_wrap(self):
        # 2 is three ahead of MOD-1.
        assert seq_diff(2, MOD - 1) == 3
        assert seq_diff(MOD - 1, 2) == -3

    def test_half_space_is_negative(self):
        # Exactly half the space away compares as "behind" (RFC 1982's
        # undefined case resolved deterministically).
        assert seq_diff(HALF, 0) == -HALF

    @given(a=seqs, d=small_deltas)
    def test_add_then_diff_roundtrip(self, a, d):
        assert seq_diff(seq_add(a, d), a) == d

    @given(a=seqs, b=seqs)
    def test_antisymmetric(self, a, b):
        d_ab = seq_diff(a, b)
        d_ba = seq_diff(b, a)
        if abs(d_ab) != HALF:
            assert d_ab == -d_ba


class TestComparisons:
    def test_orderings(self):
        assert seq_lt(0, 1)
        assert seq_gt(1, 0)
        assert seq_lt(MOD - 1, 0)       # wrap: MOD-1 precedes 0
        assert seq_gte(5, 5)
        assert seq_lte(5, 5)

    @given(a=seqs, d=st.integers(min_value=1, max_value=HALF - 1))
    def test_strictly_ahead(self, a, d):
        b = seq_add(a, d)
        assert seq_lt(a, b)
        assert seq_gt(b, a)
        assert not seq_lt(b, a)


class TestWindowIter:
    def test_simple_window(self):
        assert list(seq_window_iter(3, 6)) == [3, 4, 5]

    def test_window_across_wrap(self):
        got = list(seq_window_iter(MOD - 2, 1))
        assert got == [MOD - 2, MOD - 1, 0]

    def test_empty_window(self):
        assert list(seq_window_iter(9, 9)) == []

    def test_backwards_window_rejected(self):
        with pytest.raises(ValueError):
            list(seq_window_iter(5, 4))

    def test_small_bit_width(self):
        got = list(seq_window_iter(6, 1, bits=3))
        assert got == [6, 7, 0]
