"""Tests for the playout-buffer model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.apps.playout import PlayoutBuffer, simulate_playout


def steady_arrivals(rate_bps, duration, packet=1000, start=0.0):
    """A perfectly paced delivery trace at ``rate_bps``."""
    interval = packet * 8 / rate_bps
    out = []
    t = start
    while t < start + duration:
        out.append((t, packet))
        t += interval
    return out


class TestSmoothDelivery:
    def test_no_stalls_when_delivery_matches_media_rate(self):
        arrivals = steady_arrivals(1e6, duration=30.0)
        stats = simulate_playout(arrivals, media_rate_bps=0.8e6,
                                 prebuffer_seconds=2.0)
        assert stats.rebuffer_events == 0
        assert stats.stall_time == 0.0
        assert stats.played_seconds > 20.0

    def test_startup_delay_is_prebuffer_fill_time(self):
        # Delivery at exactly the media rate: 2 s of media takes 2 s.
        arrivals = steady_arrivals(1e6, duration=10.0)
        stats = simulate_playout(arrivals, media_rate_bps=1e6,
                                 prebuffer_seconds=2.0)
        assert stats.startup_delay == pytest.approx(2.0, abs=0.1)

    def test_faster_delivery_starts_sooner(self):
        fast = simulate_playout(steady_arrivals(4e6, 10.0), media_rate_bps=1e6)
        slow = simulate_playout(steady_arrivals(1.2e6, 10.0), media_rate_bps=1e6)
        assert fast.startup_delay < slow.startup_delay

    def test_never_starts_if_prebuffer_never_fills(self):
        stats = simulate_playout([(0.0, 1000)], media_rate_bps=1e6,
                                 prebuffer_seconds=5.0)
        assert stats.startup_delay == float("inf")
        assert stats.played_seconds == 0.0


class TestStalls:
    def test_delivery_gap_causes_rebuffer(self):
        # 5 s of good delivery, a 5 s outage, then delivery resumes.
        arrivals = steady_arrivals(1e6, 5.0)
        arrivals += steady_arrivals(1e6, 5.0, start=10.0)
        stats = simulate_playout(arrivals, media_rate_bps=1e6,
                                 prebuffer_seconds=1.0, rebuffer_seconds=1.0)
        assert stats.rebuffer_events >= 1
        assert stats.stall_time > 1.0

    def test_underrun_timing_recorded(self):
        arrivals = [(0.0, 125000)]  # 1 s of media at 1 Mb/s, all at once
        arrivals += [(20.0, 125000)]
        stats = simulate_playout(arrivals, media_rate_bps=1e6,
                                 prebuffer_seconds=0.5, rebuffer_seconds=0.5)
        assert stats.rebuffer_events == 1
        # Playback started at t=0 with 1 s buffered: underrun at t=1.
        assert stats.stall_times[0] == pytest.approx(1.0, abs=0.01)

    def test_stall_ratio(self):
        arrivals = [(0.0, 125000), (20.0, 2500000)]
        stats = simulate_playout(arrivals, media_rate_bps=1e6,
                                 prebuffer_seconds=0.5, rebuffer_seconds=0.5,
                                 end_time=30.0)
        assert 0.0 < stats.stall_ratio < 1.0
        assert stats.stall_time == pytest.approx(19.0, abs=0.1)

    def test_drain_past_last_arrival_with_end_time(self):
        arrivals = [(0.0, 1_250_000)]  # 10 s of media
        stats = simulate_playout(arrivals, media_rate_bps=1e6,
                                 prebuffer_seconds=1.0, end_time=30.0)
        assert stats.played_seconds == pytest.approx(10.0, abs=0.01)
        assert stats.rebuffer_events == 1  # ran dry at t=10


class TestValidation:
    def test_bad_media_rate(self):
        with pytest.raises(ValueError):
            PlayoutBuffer(media_rate_bps=0.0)

    def test_negative_buffer_targets(self):
        with pytest.raises(ValueError):
            PlayoutBuffer(1e6, prebuffer_seconds=-1.0)

    def test_negative_bytes(self):
        buffer = PlayoutBuffer(1e6)
        with pytest.raises(ValueError):
            buffer.feed(0.0, -5)

    def test_time_backwards_rejected(self):
        buffer = PlayoutBuffer(1e6)
        buffer.feed(5.0, 1000)
        with pytest.raises(ValueError):
            buffer.feed(4.0, 1000)

    def test_unsorted_trace_rejected(self):
        with pytest.raises(ValueError):
            simulate_playout([(2.0, 10), (1.0, 10)], media_rate_bps=1e6)


class TestInvariants:
    @given(
        arrivals=st.lists(
            st.tuples(st.floats(0, 100), st.integers(0, 100_000)),
            max_size=60,
        ).map(lambda items: sorted(items, key=lambda x: x[0])),
        media_rate=st.floats(1e4, 1e7),
    )
    def test_accounting_conserves_time(self, arrivals, media_rate):
        stats = simulate_playout(arrivals, media_rate_bps=media_rate,
                                 end_time=200.0)
        # Played media cannot exceed delivered media.
        delivered_seconds = sum(b for _, b in arrivals) * 8 / media_rate
        assert stats.played_seconds <= delivered_seconds + 1e-6
        assert stats.stall_time >= 0
        assert stats.rebuffer_events == len(stats.stall_times)

    @given(rate=st.floats(2e5, 5e6))
    def test_overprovisioned_delivery_never_stalls(self, rate):
        arrivals = steady_arrivals(rate * 2, duration=20.0)
        stats = simulate_playout(arrivals, media_rate_bps=rate,
                                 prebuffer_seconds=1.0)
        assert stats.rebuffer_events == 0
