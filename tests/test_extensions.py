"""Tests for optional extensions: burst mode and experiment helpers."""

import pytest

from repro.core import TfrcFlow
from repro.core.sender import TfrcSender
from repro.experiments.fig09_equivalence import _cross_pairs, _pair_up
from repro.net.path import LossyPath
from repro.sim.engine import Simulator


class TestBurstMode:
    def test_burst_size_validation(self):
        with pytest.raises(ValueError):
            TfrcSender(Simulator(), "f", send_packet=lambda p: None, burst_size=0)

    def test_packets_sent_in_pairs(self):
        """burst_size=2: 'two packets every two inter-packet intervals'."""
        sim = Simulator()
        sent_times = []
        sender = TfrcSender(
            sim, "f",
            send_packet=lambda p: sent_times.append(sim.now),
            burst_size=2,
        )
        sender.rate = 10_000.0  # 10 pkts/s -> pair every 0.2 s
        sender.start()
        sim.run(until=1.0)
        # Packets arrive in same-instant pairs.
        pairs = list(zip(sent_times[::2], sent_times[1::2]))
        assert pairs
        assert all(a == b for a, b in pairs)
        # Pair spacing is twice the single-packet interval.
        gaps = [b[0] - a[0] for a, b in zip(pairs, pairs[1:])]
        assert all(abs(g - 0.2) < 1e-6 for g in gaps)

    def test_burst_mode_preserves_average_rate(self):
        sim = Simulator()
        counts = {1: 0, 2: 0}
        for burst in (1, 2):
            sent = []
            sender = TfrcSender(
                sim, f"f{burst}",
                send_packet=lambda p, s=sent: s.append(p.seq),
                burst_size=burst,
            )
            sender.rate = 20_000.0
            sender.start()
            sim.run(until=sim.now + 5.0)
            sender.stop()
            counts[burst] = len(sent)
        assert counts[2] == pytest.approx(counts[1], abs=3)

    @pytest.mark.slow
    def test_burst_flow_end_to_end(self):
        sim = Simulator()
        forward = LossyPath(sim, delay=0.05)
        reverse = LossyPath(sim, delay=0.05)
        flow = TfrcFlow(sim, "f", forward, reverse, burst_size=2)
        flow.start()
        sim.run(until=10.0)
        assert flow.sender.packets_sent > 10
        assert flow.sender.feedback_received > 0


class TestPairingHelpers:
    def test_pair_up_disjoint_adjacent(self):
        assert _pair_up(["a", "b", "c", "d"]) == [("a", "b"), ("c", "d")]

    def test_pair_up_odd_drops_last(self):
        assert _pair_up(["a", "b", "c"]) == [("a", "b")]

    def test_cross_pairs(self):
        assert _cross_pairs(["a", "b"], ["x", "y"]) == [("a", "x"), ("b", "y")]
