"""Tests for the Gilbert-Elliott, trace, and rate-limited loss models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.lossmodels import (
    GilbertElliottLoss,
    TraceLoss,
    gilbert_elliott_from_rate,
    loss_run_lengths,
    rate_limited_loss,
)
from repro.net.packet import Packet, PacketType


def data_packet(seq=0):
    return Packet(flow_id="f", seq=seq, size=1000)


def ack_packet():
    return Packet(flow_id="f", seq=0, size=40, ptype=PacketType.ACK)


def run_model(model, n, start_seq=0):
    return [model(data_packet(start_seq + i), i * 0.01) for i in range(n)]


class TestGilbertElliott:
    def test_parameter_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            GilbertElliottLoss(1.5, 0.5, 0, 1, rng)
        with pytest.raises(ValueError):
            GilbertElliottLoss(0.0, 0.0, 0, 1, rng)

    def test_stationary_probability(self):
        model = GilbertElliottLoss(0.02, 0.18, 0.0, 1.0,
                                   np.random.default_rng(0))
        assert model.stationary_bad_probability == pytest.approx(0.1)
        assert model.stationary_loss_rate == pytest.approx(0.1)
        assert model.mean_burst_length == pytest.approx(1 / 0.18)

    def test_long_run_loss_rate_matches_stationary(self):
        model = GilbertElliottLoss(0.05, 0.45, 0.0, 1.0,
                                   np.random.default_rng(42))
        drops = run_model(model, 60000)
        measured = sum(drops) / len(drops)
        assert measured == pytest.approx(model.stationary_loss_rate, rel=0.15)

    def test_burstier_than_bernoulli(self):
        """Same long-run rate, but drops arrive in runs."""
        rng = np.random.default_rng(7)
        bursty = gilbert_elliott_from_rate(0.05, mean_burst_length=5, rng=rng)
        drops = run_model(bursty, 50000)
        runs = loss_run_lengths(drops)
        assert np.mean(runs) > 2.5  # Bernoulli at 5% would give ~1.05

    def test_non_data_packets_pass(self):
        model = GilbertElliottLoss(1.0, 0.0, 1.0, 1.0,
                                   np.random.default_rng(0))
        assert model(ack_packet(), 0.0) is False

    def test_from_rate_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            gilbert_elliott_from_rate(0.0, 3, rng)
        with pytest.raises(ValueError):
            gilbert_elliott_from_rate(0.5, 3, rng, loss_bad=0.4)
        with pytest.raises(ValueError):
            gilbert_elliott_from_rate(0.1, 0.5, rng)

    @settings(max_examples=20, deadline=None)
    @given(rate=st.floats(min_value=0.01, max_value=0.3),
           burst=st.floats(min_value=1.0, max_value=10.0))
    def test_from_rate_stationary_property(self, rate, burst):
        model = gilbert_elliott_from_rate(rate, burst,
                                          np.random.default_rng(0))
        assert model.stationary_loss_rate == pytest.approx(rate)
        assert model.mean_burst_length == pytest.approx(burst)


class TestTraceLoss:
    def test_replays_exactly(self):
        trace = [False, True, False, False, True]
        model = TraceLoss(trace, loop=False)
        assert run_model(model, 5) == trace

    def test_loops_by_default(self):
        model = TraceLoss([True, False])
        assert run_model(model, 4) == [True, False, True, False]

    def test_exhausted_without_loop_stops_dropping(self):
        model = TraceLoss([True], loop=False)
        assert run_model(model, 3) == [True, False, False]

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            TraceLoss([])

    def test_ignores_non_data(self):
        model = TraceLoss([True, True])
        assert model(ack_packet(), 0.0) is False
        assert model.packets_seen == 0

    def test_recording_wrapper_roundtrip(self):
        rng = np.random.default_rng(3)
        original = GilbertElliottLoss(0.1, 0.4, 0.0, 1.0, rng)
        wrapped, record = TraceLoss.recording(original)
        first_run = run_model(wrapped, 500)
        assert record == first_run
        replay = TraceLoss(record, loop=False)
        assert run_model(replay, 500) == first_run


class TestRateLimitedLoss:
    def test_caps_drops_per_window(self):
        always = lambda packet, now: packet.is_data
        model = rate_limited_loss(always, max_drops=3, window=1.0)
        # 10 packets within one second: only the first three drop.
        drops = [model(data_packet(i), i * 0.05) for i in range(10)]
        assert sum(drops) == 3

    def test_budget_replenishes_after_window(self):
        always = lambda packet, now: packet.is_data
        model = rate_limited_loss(always, max_drops=1, window=1.0)
        assert model(data_packet(0), 0.0) is True
        assert model(data_packet(1), 0.5) is False
        assert model(data_packet(2), 1.5) is True

    def test_validation(self):
        inner = lambda packet, now: False
        with pytest.raises(ValueError):
            rate_limited_loss(inner, max_drops=-1, window=1.0)
        with pytest.raises(ValueError):
            rate_limited_loss(inner, max_drops=1, window=0.0)


class TestRunLengths:
    def test_basic(self):
        assert loss_run_lengths([0, 1, 1, 0, 1, 0, 0, 1, 1, 1]) == [2, 1, 3]

    def test_trailing_run_counted(self):
        assert loss_run_lengths([1, 1]) == [2]

    def test_no_drops(self):
        assert loss_run_lengths([0, 0, 0]) == []

    @given(trace=st.lists(st.booleans(), max_size=200))
    def test_run_lengths_sum_to_total_drops(self, trace):
        assert sum(loss_run_lengths(trace)) == sum(trace)
