"""Unit and property tests for the control equations."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.equations import (
    analytic_rate_increase,
    invert_response,
    simple_response_rate,
    tcp_response_rate,
)


class TestTcpResponseRate:
    def test_known_value(self):
        # p=0.01, R=0.1, s=1000, t_RTO=0.4:
        # denom = 0.1*sqrt(2*.01/3) + 0.4*3*sqrt(3*.01/8)*.01*(1+32*.0001)
        rtt, p, trto = 0.1, 0.01, 0.4
        denom = rtt * math.sqrt(2 * p / 3) + trto * 3 * math.sqrt(3 * p / 8) * p * (
            1 + 32 * p * p
        )
        assert tcp_response_rate(1000, rtt, p, trto) == pytest.approx(1000 / denom)

    def test_decreasing_in_p(self):
        rates = [
            tcp_response_rate(1000, 0.1, p, 0.4)
            for p in (0.001, 0.01, 0.05, 0.1, 0.3, 0.8)
        ]
        assert rates == sorted(rates, reverse=True)

    def test_inversely_proportional_to_rtt_at_low_p(self):
        fast = tcp_response_rate(1000, 0.05, 0.001, 0.2)
        slow = tcp_response_rate(1000, 0.10, 0.001, 0.4)
        assert fast / slow == pytest.approx(2.0, rel=0.01)

    def test_proportional_to_packet_size(self):
        small = tcp_response_rate(500, 0.1, 0.01, 0.4)
        large = tcp_response_rate(1000, 0.1, 0.01, 0.4)
        assert large / small == pytest.approx(2.0)

    def test_timeout_term_dominates_at_high_loss(self):
        """At high p the t_RTO term must reduce the rate well below the
        simple sqrt model (the paper: t_RTO matters when loss is high)."""
        p = 0.3
        with_rto = tcp_response_rate(1000, 0.1, p, t_rto=0.4)
        sqrt_only = simple_response_rate(1000, 0.1, p)
        assert with_rto < sqrt_only / 3

    def test_agrees_with_simple_at_low_loss(self):
        p = 1e-4
        eq1 = tcp_response_rate(1000, 0.1, p, t_rto=0.4)
        simple = simple_response_rate(1000, 0.1, p)
        assert eq1 == pytest.approx(simple, rel=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            tcp_response_rate(0, 0.1, 0.01, 0.4)
        with pytest.raises(ValueError):
            tcp_response_rate(1000, 0, 0.01, 0.4)
        with pytest.raises(ValueError):
            tcp_response_rate(1000, 0.1, 1.5, 0.4)
        with pytest.raises(ValueError):
            tcp_response_rate(1000, 0.1, 0.01, 0)

    @given(
        p=st.floats(min_value=1e-6, max_value=1.0),
        rtt=st.floats(min_value=1e-3, max_value=2.0),
    )
    @settings(max_examples=100)
    def test_always_positive_and_finite(self, p, rtt):
        rate = tcp_response_rate(1000, rtt, p, 4 * rtt)
        assert rate > 0 and math.isfinite(rate)


class TestSimpleResponseRate:
    def test_formula(self):
        assert simple_response_rate(1000, 0.1, 0.01) == pytest.approx(
            1000 * math.sqrt(1.5) / (0.1 * 0.1)
        )

    def test_packets_per_rtt_is_1_2_over_sqrt_p(self):
        p = 0.01
        rate = simple_response_rate(1000, 0.1, p)
        pkts_per_rtt = rate * 0.1 / 1000
        assert pkts_per_rtt == pytest.approx(math.sqrt(1.5) / math.sqrt(p), rel=1e-9)


class TestInversion:
    @given(p=st.floats(min_value=1e-6, max_value=0.9))
    @settings(max_examples=100)
    def test_round_trip(self, p):
        rate = tcp_response_rate(1000, 0.1, p, 0.4)
        recovered = invert_response(1000, 0.1, rate, 0.4)
        assert recovered == pytest.approx(p, rel=1e-5)

    def test_very_high_rate_maps_to_floor(self):
        assert invert_response(1000, 0.1, 1e15, 0.4) == pytest.approx(1e-8)

    def test_very_low_rate_maps_to_one(self):
        assert invert_response(1000, 0.1, 1e-6, 0.4) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            invert_response(1000, 0.1, 0, 0.4)


class TestAnalyticIncrease:
    def test_paper_values(self):
        # Appendix A.1: w=1/6 gives ~0.12 for A >= 1.
        assert analytic_rate_increase(100.0, 1.0 / 6.0) == pytest.approx(0.12, abs=0.01)
        # With maximum history discounting, w=0.4 gives ~0.28.
        assert analytic_rate_increase(100.0, 0.4) == pytest.approx(0.28, abs=0.015)

    def test_w_of_one_below_one_packet(self):
        """Even weighting only the newest interval, increase < 1 pkt/RTT."""
        for a in (1, 10, 100, 10_000):
            assert analytic_rate_increase(float(a), 1.0) < 1.0

    @given(
        a=st.floats(min_value=1.0, max_value=1e6),
        w=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=100)
    def test_monotone_in_weight_and_bounded(self, a, w):
        delta = analytic_rate_increase(a, w)
        assert 0.0 <= delta < 1.0
        assert delta <= analytic_rate_increase(a, 1.0) + 1e-12

    def test_validation(self):
        with pytest.raises(ValueError):
            analytic_rate_increase(0, 0.5)
        with pytest.raises(ValueError):
            analytic_rate_increase(10, 1.5)
