"""Unit tests for the RTO estimator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.tcp.rto import RTOEstimator


class TestRTOEstimator:
    def test_initial_rto(self):
        est = RTOEstimator(granularity=0.0, min_rto=0.2, initial_rto=3.0)
        assert est.rto == 3.0

    def test_first_sample_sets_srtt_and_var(self):
        est = RTOEstimator(granularity=0.0, min_rto=0.01)
        est.sample(0.1)
        assert est.srtt == pytest.approx(0.1)
        assert est.rttvar == pytest.approx(0.05)
        assert est.rto == pytest.approx(0.1 + 4 * 0.05)

    def test_smoothing_converges_to_constant_rtt(self):
        est = RTOEstimator(granularity=0.0, min_rto=0.01)
        for _ in range(200):
            est.sample(0.2)
        assert est.srtt == pytest.approx(0.2, rel=1e-3)
        assert est.rttvar < 0.01

    def test_granularity_rounds_up(self):
        est = RTOEstimator(granularity=0.5, min_rto=0.1)
        est.sample(0.3)
        assert est.rto % 0.5 == pytest.approx(0.0)
        assert est.rto >= 0.3

    def test_min_rto_floor(self):
        est = RTOEstimator(granularity=0.0, min_rto=1.0)
        for _ in range(100):
            est.sample(0.01)
        assert est.rto == 1.0

    def test_backoff_doubles(self):
        est = RTOEstimator(granularity=0.0, min_rto=0.1)
        est.sample(0.5)
        base = est.rto
        est.backoff()
        assert est.rto == pytest.approx(2 * base)
        est.backoff()
        assert est.rto == pytest.approx(4 * base)

    def test_backoff_capped_at_max(self):
        est = RTOEstimator(granularity=0.0, min_rto=0.1)
        est.sample(10.0)
        for _ in range(20):
            est.backoff()
        assert est.rto == RTOEstimator.MAX_RTO

    def test_sample_clears_backoff(self):
        est = RTOEstimator(granularity=0.0, min_rto=0.1)
        est.sample(0.5)
        base = est.rto
        est.backoff()
        est.sample(0.5)
        assert est.rto == pytest.approx(base, rel=0.2)

    def test_aggressive_settings_yield_small_rto(self):
        """The 'Solaris' configuration: tiny floor, weak variance margin."""
        aggressive = RTOEstimator(granularity=0.01, min_rto=0.05, k=1.0)
        conservative = RTOEstimator(granularity=0.5, min_rto=1.0, k=4.0)
        for _ in range(50):
            aggressive.sample(0.1)
            conservative.sample(0.1)
        assert aggressive.rto < conservative.rto

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RTOEstimator(granularity=-1)
        with pytest.raises(ValueError):
            RTOEstimator(min_rto=0)
        with pytest.raises(ValueError):
            RTOEstimator().sample(0)

    @given(st.lists(st.floats(min_value=1e-4, max_value=5.0), min_size=1, max_size=100))
    @settings(max_examples=50)
    def test_rto_always_within_bounds(self, rtts):
        est = RTOEstimator(granularity=0.1, min_rto=0.2)
        for rtt in rtts:
            est.sample(rtt)
            assert 0.2 <= est.rto <= RTOEstimator.MAX_RTO

    @given(st.floats(min_value=1e-3, max_value=10.0))
    @settings(max_examples=50)
    def test_rto_at_least_srtt(self, rtt):
        est = RTOEstimator(granularity=0.0, min_rto=1e-4)
        est.sample(rtt)
        assert est.rto >= est.srtt
