"""Unit tests for links, paths and loss models."""

import numpy as np
import pytest

from repro.net.link import Link
from repro.net.packet import Packet
from repro.net.path import (
    LossyPath,
    Path,
    bernoulli_loss,
    periodic_loss,
    scheduled_loss,
)
from repro.net.queues import DropTailQueue
from repro.sim.engine import Simulator


def make_packet(seq=0, size=1000, flow="f"):
    return Packet(flow_id=flow, seq=seq, size=size)


def make_link(sim, bw=8e6, delay=0.01, capacity=10):
    return Link(sim, bw, delay, DropTailQueue(capacity))


class TestLink:
    def test_delivery_time_is_tx_plus_propagation(self):
        sim = Simulator()
        link = make_link(sim, bw=8e6, delay=0.01)  # 1000B => 1 ms tx
        arrivals = []
        link.connect(lambda p: arrivals.append(sim.now))
        link.send(make_packet())
        sim.run()
        assert arrivals == [pytest.approx(0.011)]

    def test_serialization_spaces_back_to_back_packets(self):
        sim = Simulator()
        link = make_link(sim, bw=8e6, delay=0.0)
        arrivals = []
        link.connect(lambda p: arrivals.append(sim.now))
        link.send(make_packet(0))
        link.send(make_packet(1))
        sim.run()
        assert arrivals == [pytest.approx(0.001), pytest.approx(0.002)]

    def test_queue_overflow_drops(self):
        sim = Simulator()
        link = make_link(sim, capacity=2)
        link.connect(lambda p: None)
        results = [link.send(make_packet(i)) for i in range(5)]
        # First packet starts transmitting immediately; two fit in the queue.
        assert results == [True, True, True, False, False]

    def test_send_without_receiver_raises(self):
        sim = Simulator()
        link = make_link(sim)
        with pytest.raises(RuntimeError):
            link.send(make_packet())

    def test_counters(self):
        sim = Simulator()
        link = make_link(sim)
        link.connect(lambda p: None)
        for i in range(3):
            link.send(make_packet(i))
        sim.run()
        assert link.packets_forwarded == 3
        assert link.bytes_forwarded == 3000

    def test_utilization_accumulates_busy_time(self):
        sim = Simulator()
        link = make_link(sim, bw=8e6)
        link.connect(lambda p: None)
        for i in range(4):
            link.send(make_packet(i))
        sim.run()
        assert link.utilization_seconds == pytest.approx(0.004)

    def test_fifo_across_flows(self):
        sim = Simulator()
        link = make_link(sim, capacity=100)
        order = []
        link.connect(lambda p: order.append((p.flow_id, p.seq)))
        link.send(make_packet(0, flow="a"))
        link.send(make_packet(0, flow="b"))
        link.send(make_packet(1, flow="a"))
        sim.run()
        assert order == [("a", 0), ("b", 0), ("a", 1)]

    def test_invalid_parameters(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Link(sim, 0, 0.01, DropTailQueue(1))
        with pytest.raises(ValueError):
            Link(sim, 1e6, -0.1, DropTailQueue(1))


class TestPath:
    def test_chains_links(self):
        sim = Simulator()
        first = make_link(sim, delay=0.01)
        second = make_link(sim, delay=0.02)
        path = Path([first, second])
        arrivals = []
        path.connect(lambda p: arrivals.append(sim.now))
        path.send(make_packet())
        sim.run()
        # 1 ms tx + 10 ms + 1 ms tx + 20 ms
        assert arrivals == [pytest.approx(0.032)]

    def test_min_bandwidth_and_delay(self):
        sim = Simulator()
        path = Path([make_link(sim, bw=8e6, delay=0.01), make_link(sim, bw=4e6, delay=0.02)])
        assert path.min_bandwidth_bps == 4e6
        assert path.base_delay == pytest.approx(0.03)

    def test_empty_path_rejected(self):
        with pytest.raises(ValueError):
            Path([])


class TestLossModels:
    def test_periodic_loss_every_nth(self):
        model = periodic_loss(3)
        outcomes = [model(make_packet(i), 0.0) for i in range(9)]
        assert outcomes == [False, False, True] * 3

    def test_periodic_ignores_non_data(self):
        from repro.net.packet import PacketType

        model = periodic_loss(2)
        ack = Packet(flow_id="f", seq=0, size=40, ptype=PacketType.ACK)
        assert not any(model(ack, 0.0) for _ in range(10))

    def test_bernoulli_rate_approximately_correct(self):
        rng = np.random.default_rng(3)
        model = bernoulli_loss(0.1, rng)
        losses = sum(model(make_packet(i), 0.0) for i in range(20_000))
        assert 0.08 < losses / 20_000 < 0.12

    def test_bernoulli_validation(self):
        with pytest.raises(ValueError):
            bernoulli_loss(1.0, np.random.default_rng(0))

    def test_scheduled_loss_switches_models(self):
        always = lambda p, t: True
        never = lambda p, t: False
        model = scheduled_loss([(0.0, never), (5.0, always)])
        assert not model(make_packet(), 1.0)
        assert model(make_packet(), 6.0)

    def test_scheduled_requires_increasing_times(self):
        never = lambda p, t: False
        with pytest.raises(ValueError):
            scheduled_loss([(5.0, never), (1.0, never)])


class TestLossyPath:
    def test_fixed_delay_delivery(self):
        sim = Simulator()
        path = LossyPath(sim, delay=0.05)
        arrivals = []
        path.connect(lambda p: arrivals.append(sim.now))
        path.send(make_packet())
        sim.run()
        assert arrivals == [pytest.approx(0.05)]

    def test_loss_model_applied(self):
        sim = Simulator()
        path = LossyPath(sim, delay=0.01, loss_model=periodic_loss(2))
        arrivals = []
        path.connect(lambda p: arrivals.append(p.seq))
        for i in range(6):
            path.send(make_packet(i))
        sim.run()
        assert arrivals == [0, 2, 4]
        assert path.packets_dropped == 3

    def test_bandwidth_adds_serialization(self):
        sim = Simulator()
        path = LossyPath(sim, delay=0.01, bandwidth_bps=8e6)
        arrivals = []
        path.connect(lambda p: arrivals.append(sim.now))
        path.send(make_packet())
        sim.run()
        assert arrivals == [pytest.approx(0.011)]

    def test_send_without_receiver_raises(self):
        sim = Simulator()
        with pytest.raises(RuntimeError):
            LossyPath(sim, delay=0.01).send(make_packet())
