"""Differential test: incremental ALI vs a direct paper-formula reference.

The Average Loss Interval estimator in ``repro.core.loss_intervals`` keeps
incremental state (deques, folded discounts).  This module re-derives the
estimate directly from the paper's section 3.3 formulas -- a plain
function of (closed interval history, open interval) -- and checks the
incremental implementation against it over randomized event sequences.
Discounting is off for the exact-equality comparison (its fold-in rule is
stateful by design) and covered separately by monotonicity properties.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.loss_intervals import AverageLossIntervals, ali_weights


def reference_average(history_newest_first, s0, n=8):
    """Paper 3.3: s_hat over s1..sn, s_hat_new over s0..s(n-1), take max."""
    weights = ali_weights(n)
    hist = [max(1.0, h) for h in history_newest_first[:n]]

    def weighted(values):
        pairs = list(zip(values, weights))
        total_w = sum(w for _, w in pairs)
        return sum(v * w for v, w in pairs) / total_w if total_w else 0.0

    if not hist:
        return 0.0
    s_hat = weighted(hist)
    s_hat_new = weighted([s0] + hist[: n - 1])
    return max(s_hat, s_hat_new)


intervals_strategy = st.lists(
    st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
    min_size=0, max_size=20,
)
s0_strategy = st.floats(min_value=0.0, max_value=1e4, allow_nan=False)


class TestAgainstReference:
    @given(intervals=intervals_strategy, s0=s0_strategy)
    def test_matches_paper_formula(self, intervals, s0):
        ali = AverageLossIntervals(n=8, discounting=False)
        for interval in intervals:
            ali.on_loss_event(interval)
        ali.on_packet(s0)
        history = [max(1.0, i) for i in reversed(intervals)]  # newest first
        expected = reference_average(history, s0)
        assert ali.average_interval() == pytest.approx(expected, rel=1e-12)

    @given(intervals=intervals_strategy, s0=s0_strategy,
           n=st.sampled_from([2, 4, 8, 16]))
    def test_matches_reference_for_other_history_sizes(self, intervals, s0, n):
        ali = AverageLossIntervals(n=n, discounting=False)
        for interval in intervals:
            ali.on_loss_event(interval)
        ali.on_packet(s0)
        history = [max(1.0, i) for i in reversed(intervals)]
        expected = reference_average(history, s0, n=n)
        assert ali.average_interval() == pytest.approx(expected, rel=1e-12)

    @given(intervals=st.lists(st.floats(1.0, 1e3), min_size=1, max_size=12))
    def test_packet_counting_equals_explicit_interval(self, intervals):
        """Feeding s0 via on_packet then closing must equal passing the
        interval length explicitly."""
        counted = AverageLossIntervals(discounting=False)
        explicit = AverageLossIntervals(discounting=False)
        for interval in intervals:
            counted.on_packet(interval)
            counted.on_loss_event()
            explicit.on_loss_event(interval)
        assert counted.average_interval() == pytest.approx(
            explicit.average_interval()
        )


class TestDiscountingProperties:
    @given(intervals=st.lists(st.floats(1.0, 500.0), min_size=2, max_size=8),
           lull=st.floats(0.0, 1e4))
    def test_discounting_never_lowers_the_estimate(self, intervals, lull):
        """During a lull, discounting shifts weight toward the newest
        information (the long s0), so it can only raise the average."""
        plain = AverageLossIntervals(discounting=False)
        discounted = AverageLossIntervals(discounting=True)
        for interval in intervals:
            plain.on_loss_event(interval)
            discounted.on_loss_event(interval)
        plain.on_packet(lull)
        discounted.on_packet(lull)
        assert discounted.average_interval() >= plain.average_interval() - 1e-9

    @given(intervals=st.lists(st.floats(1.0, 500.0), min_size=2, max_size=8))
    def test_no_discount_before_threshold(self, intervals):
        """Discounting must not engage until s0 exceeds twice the average
        (paper: 'only invoked after the most recent loss interval is
        greater than twice the average')."""
        plain = AverageLossIntervals(discounting=False)
        discounted = AverageLossIntervals(discounting=True)
        for interval in intervals:
            plain.on_loss_event(interval)
            discounted.on_loss_event(interval)
        raw = plain._weighted_average(
            plain._intervals, [1.0] * len(plain._intervals)
        )
        plain.on_packet(2.0 * raw * 0.99)
        discounted.on_packet(2.0 * raw * 0.99)
        assert discounted.average_interval() == pytest.approx(
            plain.average_interval()
        )

    @given(intervals=st.lists(st.floats(1.0, 500.0), min_size=2, max_size=8),
           lull=st.floats(0.0, 1e4))
    def test_newest_effective_weight_bounded(self, intervals, lull):
        ali = AverageLossIntervals(discounting=True)
        for interval in intervals:
            ali.on_loss_event(interval)
        ali.on_packet(lull)
        weight = ali.newest_effective_weight()
        assert 0.0 < weight <= 1.0
