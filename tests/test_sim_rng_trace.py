"""Unit tests for the RNG registry and tracer."""

import pytest

from repro.sim.rng import RngRegistry
from repro.sim.trace import Tracer


class TestRngRegistry:
    def test_same_name_same_stream_instance(self):
        registry = RngRegistry(1)
        assert registry.stream("a") is registry.stream("a")

    def test_streams_independent_of_creation_order(self):
        r1 = RngRegistry(42)
        r2 = RngRegistry(42)
        _ = r1.stream("first")
        a_after = r1.stream("target").random(5)
        a_only = r2.stream("target").random(5)
        assert a_after.tolist() == a_only.tolist()

    def test_different_names_differ(self):
        registry = RngRegistry(0)
        a = registry.stream("a").random(10)
        b = registry.stream("b").random(10)
        assert a.tolist() != b.tolist()

    def test_different_seeds_differ(self):
        a = RngRegistry(1).stream("x").random(10)
        b = RngRegistry(2).stream("x").random(10)
        assert a.tolist() != b.tolist()

    def test_reproducible_across_instances(self):
        a = RngRegistry(7).stream("traffic").random(10)
        b = RngRegistry(7).stream("traffic").random(10)
        assert a.tolist() == b.tolist()

    def test_fork_changes_streams(self):
        base = RngRegistry(7)
        forked = base.fork(1)
        assert (
            base.stream("x").random(5).tolist()
            != forked.stream("x").random(5).tolist()
        )

    def test_fork_deterministic(self):
        a = RngRegistry(7).fork(3).stream("x").random(5)
        b = RngRegistry(7).fork(3).stream("x").random(5)
        assert a.tolist() == b.tolist()

    def test_non_int_seed_rejected(self):
        with pytest.raises(TypeError):
            RngRegistry("seed")  # type: ignore[arg-type]

    def test_contains(self):
        registry = RngRegistry(0)
        assert "x" not in registry
        registry.stream("x")
        assert "x" in registry


class TestTracer:
    def test_record_and_select_by_category(self):
        tracer = Tracer()
        tracer.record(1.0, "send", "flow-a", 1000)
        tracer.record(2.0, "recv", "flow-a", 1000)
        sends = tracer.select(category="send")
        assert len(sends) == 1
        assert sends[0].time == 1.0

    def test_select_by_source_and_window(self):
        tracer = Tracer()
        for t in range(5):
            tracer.record(float(t), "send", "a", t)
            tracer.record(float(t), "send", "b", t)
        picked = tracer.select(source="a", t_min=1.0, t_max=3.0)
        assert [r.time for r in picked] == [1.0, 2.0, 3.0]

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        tracer.record(1.0, "send", "a")
        assert len(tracer) == 0

    def test_sources_listing(self):
        tracer = Tracer()
        tracer.record(1.0, "send", "b")
        tracer.record(1.0, "recv", "a")
        assert tracer.sources() == ["a", "b"]
        assert tracer.sources(category="send") == ["b"]

    def test_hooks_invoked(self):
        tracer = Tracer()
        seen = []
        tracer.add_hook(lambda rec: seen.append(rec.category))
        tracer.record(1.0, "drop", "x")
        assert seen == ["drop"]

    def test_clear(self):
        tracer = Tracer()
        tracer.record(1.0, "send", "a")
        tracer.clear()
        assert len(tracer) == 0

    def test_meta_preserved(self):
        tracer = Tracer()
        tracer.record(1.0, "send", "a", 5, meta={"seq": 3})
        assert tracer.select()[0].meta == {"seq": 3}
