"""Unit tests for the RNG registry and tracer."""

import tracemalloc

import pytest

from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecord, Tracer


class TestRngRegistry:
    def test_same_name_same_stream_instance(self):
        registry = RngRegistry(1)
        assert registry.stream("a") is registry.stream("a")

    def test_streams_independent_of_creation_order(self):
        r1 = RngRegistry(42)
        r2 = RngRegistry(42)
        _ = r1.stream("first")
        a_after = r1.stream("target").random(5)
        a_only = r2.stream("target").random(5)
        assert a_after.tolist() == a_only.tolist()

    def test_different_names_differ(self):
        registry = RngRegistry(0)
        a = registry.stream("a").random(10)
        b = registry.stream("b").random(10)
        assert a.tolist() != b.tolist()

    def test_different_seeds_differ(self):
        a = RngRegistry(1).stream("x").random(10)
        b = RngRegistry(2).stream("x").random(10)
        assert a.tolist() != b.tolist()

    def test_reproducible_across_instances(self):
        a = RngRegistry(7).stream("traffic").random(10)
        b = RngRegistry(7).stream("traffic").random(10)
        assert a.tolist() == b.tolist()

    def test_fork_changes_streams(self):
        base = RngRegistry(7)
        forked = base.fork(1)
        assert (
            base.stream("x").random(5).tolist()
            != forked.stream("x").random(5).tolist()
        )

    def test_fork_deterministic(self):
        a = RngRegistry(7).fork(3).stream("x").random(5)
        b = RngRegistry(7).fork(3).stream("x").random(5)
        assert a.tolist() == b.tolist()

    def test_non_int_seed_rejected(self):
        with pytest.raises(TypeError):
            RngRegistry("seed")  # type: ignore[arg-type]

    def test_contains(self):
        registry = RngRegistry(0)
        assert "x" not in registry
        registry.stream("x")
        assert "x" in registry


class TestTracer:
    def test_record_and_select_by_category(self):
        tracer = Tracer()
        tracer.record(1.0, "send", "flow-a", 1000)
        tracer.record(2.0, "recv", "flow-a", 1000)
        sends = tracer.select(category="send")
        assert len(sends) == 1
        assert sends[0].time == 1.0

    def test_select_by_source_and_window(self):
        tracer = Tracer()
        for t in range(5):
            tracer.record(float(t), "send", "a", t)
            tracer.record(float(t), "send", "b", t)
        picked = tracer.select(source="a", t_min=1.0, t_max=3.0)
        assert [r.time for r in picked] == [1.0, 2.0, 3.0]

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        tracer.record(1.0, "send", "a")
        assert len(tracer) == 0

    def test_sources_listing(self):
        tracer = Tracer()
        tracer.record(1.0, "send", "b")
        tracer.record(1.0, "recv", "a")
        assert tracer.sources() == ["a", "b"]
        assert tracer.sources(category="send") == ["b"]

    def test_hooks_invoked(self):
        tracer = Tracer()
        seen = []
        tracer.add_hook(lambda rec: seen.append(rec.category))
        tracer.record(1.0, "drop", "x")
        assert seen == ["drop"]

    def test_clear(self):
        tracer = Tracer()
        tracer.record(1.0, "send", "a")
        tracer.clear()
        assert len(tracer) == 0

    def test_meta_preserved(self):
        tracer = Tracer()
        tracer.record(1.0, "send", "a", 5, meta={"seq": 3})
        assert tracer.select()[0].meta == {"seq": 3}


class TestColumnarTracer:
    """The columnar storage must be an exact view-equivalent of legacy."""

    @staticmethod
    def _fill(tracer):
        tracer.record(1.0, "send", "a", 100, meta={"seq": 1})
        tracer.record(1.5, "queue", "link", 7)
        tracer.record(2.0, "recv", "b", 100)
        tracer.record(2.5, "send", "a", 200, meta={"seq": 2})

    def test_modes_produce_identical_records(self):
        columnar, legacy = Tracer(columnar=True), Tracer(columnar=False)
        self._fill(columnar)
        self._fill(legacy)
        assert list(columnar) == list(legacy)
        assert len(columnar) == len(legacy) == 4
        assert columnar.select(category="send") == legacy.select(category="send")
        assert columnar.select(source="a", t_min=1.2, t_max=2.5) == legacy.select(
            source="a", t_min=1.2, t_max=2.5
        )
        assert columnar.sources() == legacy.sources()
        assert columnar.sources(category="send") == legacy.sources(category="send")
        assert columnar.series(category="queue") == legacy.series(category="queue")

    def test_lazy_records_carry_meta(self):
        tracer = Tracer()
        self._fill(tracer)
        records = tracer.select(category="send")
        assert records[0].meta == {"seq": 1}
        assert records[1].meta == {"seq": 2}
        assert tracer.select(category="recv")[0].meta is None

    def test_series_returns_columns(self):
        tracer = Tracer()
        self._fill(tracer)
        times, values = tracer.series(category="send", source="a")
        assert times == [1.0, 2.5]
        assert values == [100, 200]

    def test_columnar_clear(self):
        tracer = Tracer()
        self._fill(tracer)
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.select() == []

    def test_hooks_receive_records_in_columnar_mode(self):
        tracer = Tracer()
        seen = []
        tracer.add_hook(seen.append)
        tracer.record(1.0, "drop", "x", 5, meta={"seq": 9})
        assert seen == [TraceRecord(1.0, "drop", "x", 5, {"seq": 9})]

    def test_no_hooks_means_no_record_objects(self, monkeypatch):
        """record() must not construct TraceRecord unless hooks exist."""
        import repro.sim.trace as trace_mod

        def boom(*args, **kwargs):
            raise AssertionError("TraceRecord constructed without hooks")

        tracer = Tracer()
        monkeypatch.setattr(trace_mod, "TraceRecord", boom)
        tracer.record(1.0, "send", "a", 1.0)  # must not raise
        assert len(tracer) == 1

    def test_disabled_tracer_is_allocation_free(self):
        """Satellite acceptance: Tracer(enabled=False) runs allocate nothing."""
        tracer = Tracer(enabled=False)
        tracer.record(1.0, "send", "a", 1.0)  # warm up any lazy state
        spins = list(range(2000))
        tracemalloc.start()
        try:
            before = tracemalloc.get_traced_memory()[0]
            for _ in spins:
                tracer.record(1.0, "send", "a", 1.0)
            after = tracemalloc.get_traced_memory()[0]
        finally:
            tracemalloc.stop()
        # Zero bytes attributable to record(); a tiny slack absorbs the
        # loop's own iterator machinery.
        assert after - before < 256
        assert len(tracer) == 0
