"""Unit and property tests for the loss-interval estimators."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.loss_intervals import (
    ALI_DEFAULT_WEIGHTS,
    AverageLossIntervals,
    DynamicHistoryWindow,
    EwmaLossIntervals,
    ali_weights,
)


class TestWeights:
    def test_paper_n8_weights(self):
        assert ali_weights(8) == pytest.approx([1, 1, 1, 1, 0.8, 0.6, 0.4, 0.2])

    def test_default_is_n8(self):
        assert ALI_DEFAULT_WEIGHTS == ali_weights(8)

    def test_n4(self):
        assert ali_weights(4) == pytest.approx([1, 1, 2 / 3, 1 / 3])

    def test_odd_or_small_rejected(self):
        with pytest.raises(ValueError):
            ali_weights(7)
        with pytest.raises(ValueError):
            ali_weights(0)

    @given(st.integers(min_value=1, max_value=16).map(lambda k: 2 * k))
    def test_weights_nonincreasing_positive(self, n):
        weights = ali_weights(n)
        assert all(w > 0 for w in weights)
        assert all(a >= b for a, b in zip(weights, weights[1:]))


def feed_intervals(ali, intervals):
    """Feed closed intervals (oldest first) through the estimator."""
    for interval in intervals:
        ali.on_packet(interval)
        ali.on_loss_event()


class TestAverageLossIntervals:
    def test_no_loss_means_zero_rate(self):
        ali = AverageLossIntervals()
        ali.on_packet(500)
        assert ali.loss_event_rate() == 0.0
        assert ali.average_interval() == 0.0

    def test_constant_intervals_give_exact_rate(self):
        ali = AverageLossIntervals(discounting=False)
        feed_intervals(ali, [100] * 10)
        assert ali.average_interval() == pytest.approx(100.0)
        assert ali.loss_event_rate() == pytest.approx(0.01)

    def test_stability_under_periodic_loss(self):
        """Paper: with a stable loss rate the estimate must be completely
        stable, including as s0 grows between losses."""
        ali = AverageLossIntervals(discounting=False)
        feed_intervals(ali, [100] * 8)
        estimates = []
        for _ in range(99):
            ali.on_packet(1)
            estimates.append(ali.average_interval())
        assert max(estimates) - min(estimates) < 1e-9

    def test_s0_ignored_until_it_raises_average(self):
        ali = AverageLossIntervals(discounting=False)
        feed_intervals(ali, [100] * 8)
        ali.on_packet(50)  # open interval shorter than average: ignored
        assert ali.average_interval() == pytest.approx(100.0)

    def test_long_s0_raises_average(self):
        ali = AverageLossIntervals(discounting=False)
        feed_intervals(ali, [100] * 8)
        ali.on_packet(1000)
        assert ali.average_interval() > 100.0

    def test_rate_decrease_responds_quickly(self):
        """Several short intervals must raise p strongly (paper guideline)."""
        ali = AverageLossIntervals(discounting=False)
        feed_intervals(ali, [100] * 8)
        p_before = ali.loss_event_rate()
        feed_intervals(ali, [10] * 4)
        # Newest-first history [10]*4 + [100]*4 with the n=8 weights gives
        # s_hat = (4*10 + 2*100)/6 = 40, i.e. p jumps 2.5x after four short
        # intervals.
        assert ali.loss_event_rate() > 2 * p_before

    def test_estimate_increases_only_on_new_loss_or_long_interval(self):
        """p must never increase while no loss occurs (paper guideline)."""
        ali = AverageLossIntervals()
        feed_intervals(ali, [50, 100, 80, 120, 90, 60, 100, 100])
        last_p = ali.loss_event_rate()
        for _ in range(500):
            ali.on_packet(1)
            p = ali.loss_event_rate()
            assert p <= last_p + 1e-12
            last_p = p

    def test_history_discounting_engages_after_2x(self):
        ali = AverageLossIntervals(discounting=True)
        feed_intervals(ali, [100] * 8)
        ali.on_packet(150)
        assert ali._current_discount() == 1.0
        ali.on_packet(100)  # s0 = 250 > 2*100
        assert ali._current_discount() < 1.0

    def test_discounting_raises_newest_weight_toward_04(self):
        ali = AverageLossIntervals(discounting=True, discount_floor=0.3)
        feed_intervals(ali, [100] * 8)
        assert ali.newest_effective_weight() == pytest.approx(1 / 6, rel=0.01)
        ali.on_packet(10_000)  # deep discounting
        assert ali.newest_effective_weight() == pytest.approx(0.4, abs=0.02)

    def test_discounting_speeds_up_recovery(self):
        plain = AverageLossIntervals(discounting=False)
        discounted = AverageLossIntervals(discounting=True)
        for ali in (plain, discounted):
            feed_intervals(ali, [100] * 8)
            ali.on_packet(1000)
        assert discounted.average_interval() > plain.average_interval()

    def test_discount_folded_into_history_on_loss(self):
        ali = AverageLossIntervals(discounting=True)
        feed_intervals(ali, [100] * 8)
        ali.on_packet(1000)
        discounted_avg = ali.average_interval()
        ali.on_loss_event()  # folds the discount into history
        # New average (closed intervals incl. the 1000) stays elevated
        # rather than snapping back to ~100.
        assert ali.average_interval() > 150

    def test_seed_replaces_history(self):
        ali = AverageLossIntervals()
        feed_intervals(ali, [5, 5, 5])
        ali.seed(200)
        assert ali.average_interval() == pytest.approx(200.0)
        assert ali.loss_event_rate() == pytest.approx(0.005)

    def test_minimum_interval_is_one_packet(self):
        ali = AverageLossIntervals()
        ali.on_loss_event(0)
        assert ali.average_interval() >= 1.0
        assert ali.loss_event_rate() <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            AverageLossIntervals(discount_floor=0.0)
        ali = AverageLossIntervals()
        with pytest.raises(ValueError):
            ali.on_packet(-1)
        with pytest.raises(ValueError):
            ali.seed(0)

    @given(
        st.lists(st.floats(min_value=1, max_value=10_000), min_size=1, max_size=40)
    )
    @settings(max_examples=100)
    def test_average_within_interval_range(self, intervals):
        """The weighted average lies within [min, max] of the fed data."""
        ali = AverageLossIntervals(discounting=False)
        feed_intervals(ali, intervals)
        window = intervals[-8:]
        avg = ali.average_interval()
        assert min(window) - 1e-9 <= avg <= max(window) + 1e-9

    @given(st.lists(st.integers(min_value=1, max_value=1000), min_size=9, max_size=50))
    @settings(max_examples=100)
    def test_rate_in_unit_range(self, intervals):
        ali = AverageLossIntervals()
        feed_intervals(ali, intervals)
        assert 0.0 < ali.loss_event_rate() <= 1.0


class TestEwmaLossIntervals:
    def test_first_interval_sets_average(self):
        est = EwmaLossIntervals(weight=0.25)
        est.on_packet(80)
        est.on_loss_event()
        assert est.average_interval() == pytest.approx(80.0)

    def test_converges_to_constant(self):
        est = EwmaLossIntervals(weight=0.25)
        feed_intervals(est, [100] * 50)
        assert est.average_interval() == pytest.approx(100.0)

    def test_heavier_weight_reacts_faster(self):
        fast = EwmaLossIntervals(weight=0.9)
        slow = EwmaLossIntervals(weight=0.1)
        for est in (fast, slow):
            feed_intervals(est, [100] * 20)
            feed_intervals(est, [10] * 2)
        assert fast.average_interval() < slow.average_interval()

    def test_validation(self):
        with pytest.raises(ValueError):
            EwmaLossIntervals(weight=0)


class TestDynamicHistoryWindow:
    def test_rate_is_events_over_window(self):
        win = DynamicHistoryWindow(window_packets=100)
        for _ in range(99):
            win.on_packet()
        win.on_loss_event()
        assert win.loss_event_rate() == pytest.approx(0.01)

    def test_window_boundary_noise(self):
        """The paper's criticism: under perfectly periodic loss the measured
        rate fluctuates as events enter/leave the window."""
        win = DynamicHistoryWindow(window_packets=250)
        rates = []
        for _ in range(20):
            for _ in range(99):
                win.on_packet()
            win.on_loss_event()
            rates.append(win.loss_event_rate())
        assert max(rates) - min(rates) > 1e-4  # visibly noisy

    def test_resize_keeps_newest(self):
        win = DynamicHistoryWindow(window_packets=10)
        for _ in range(9):
            win.on_packet()
        win.on_loss_event()
        win.set_window(5)
        assert win.loss_event_rate() == pytest.approx(1 / 5)

    def test_validation(self):
        with pytest.raises(ValueError):
            DynamicHistoryWindow(window_packets=1)
