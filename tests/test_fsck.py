"""``tfrc-sweep-fsck``: every finding kind, its ``--repair`` action, and
the CLI's exit codes / JSON report."""

import json
import os
import time

import pytest

import _executor_probe  # noqa: F401  (registers the "executor_probe" scenario)
from repro.scenarios import (
    FileQueue,
    FileQueueExecutor,
    ResultCache,
    ScenarioSpec,
    SweepRunner,
)
from repro.scenarios.fsck import audit, main as fsck_main

SPEC = ScenarioSpec("executor_probe", seed=7, extra={"x": 5})
KEY = f"{SPEC.scenario}-{SPEC.spec_hash()}"


def _queue(tmp_path):
    """An empty queue directory plus its default-location cache."""
    fq = FileQueue(tmp_path / "queue").ensure()
    cache = ResultCache(fq.root / "results")
    return fq, cache


def _payload(fq, cache, attempts=0, max_attempts=3):
    return {
        "key": KEY,
        "module": "_executor_probe",
        "spec": SPEC.to_dict(),
        "cache_dir": fq.encode_cache_dir(cache.root),
        "attempts": attempts,
        "max_attempts": max_attempts,
    }


def _complete(fq, cache):
    """Put the probe cell into the healthy completed state."""
    cache.put(SPEC, {"x": 5, "seed": 7, "product": 35, "duration": 1.0})
    fq.complete(KEY, worker="test", elapsed_seconds=0.0, attempts=0)


def _kinds(findings):
    return sorted(f.kind for f in findings)


class TestAuditFindings:
    def test_clean_after_real_sweep(self, tmp_path):
        queue_dir = tmp_path / "queue"
        SweepRunner(
            ScenarioSpec("executor_probe", seed=3, extra={"x": 0}),
            {"extra.x": [1, 2], "seed": [10, 20]},
            cache_dir=str(queue_dir / "results"),
            executor=FileQueueExecutor(
                queue_dir, local_workers=1,
                poll_interval=0.02, lease_timeout=30.0,
            ),
        ).run()
        assert audit(queue_dir) == []

    def test_corrupt_cache_entry(self, tmp_path):
        fq, cache = _queue(tmp_path)
        bad = cache.root / f"{KEY}.json"
        bad.write_text('{"truncated":')
        findings = audit(fq.root)
        assert _kinds(findings) == ["corrupt_cache_entry"]
        assert findings[0].repaired is None

        repaired = audit(fq.root, repair=True)
        assert repaired[0].repaired is not None
        assert not bad.exists()
        assert list(cache.quarantine_dir.iterdir())  # evidence preserved
        assert audit(fq.root) == []

    def test_corrupt_done_marker(self, tmp_path):
        fq, _cache = _queue(tmp_path)
        (fq.done / f"{KEY}.json").write_text("not json")
        assert _kinds(audit(fq.root)) == ["corrupt_done"]
        audit(fq.root, repair=True)
        assert not (fq.done / f"{KEY}.json").exists()
        assert audit(fq.root) == []

    def test_done_without_result(self, tmp_path):
        fq, _cache = _queue(tmp_path)
        fq.complete(KEY, worker="test", elapsed_seconds=0.0, attempts=0)
        findings = audit(fq.root)
        assert _kinds(findings) == ["done_without_result"]
        audit(fq.root, repair=True)
        # marker withdrawn: the cell re-runs instead of being trusted
        assert not fq.done_path(KEY).exists()
        assert audit(fq.root) == []

    def test_corrupt_task_quarantined_with_record(self, tmp_path):
        fq, _cache = _queue(tmp_path)
        fq.task_path(KEY).write_text('{"spec": tru')
        assert _kinds(audit(fq.root)) == ["corrupt_task"]
        audit(fq.root, repair=True)
        assert not fq.task_path(KEY).exists()
        assert KEY in fq.quarantined_keys()
        records = fq.read_failures(KEY)
        assert records and records[-1]["kind"] == "corrupt_task"
        assert records[-1]["worker"] == "fsck"
        assert audit(fq.root) == []

    def test_task_after_done(self, tmp_path):
        fq, cache = _queue(tmp_path)
        _complete(fq, cache)
        fq.enqueue(_payload(fq, cache))
        assert _kinds(audit(fq.root)) == ["task_after_done"]
        audit(fq.root, repair=True)
        assert not fq.task_path(KEY).exists()
        assert fq.done_path(KEY).exists()  # the completion itself survives
        assert audit(fq.root) == []

    def test_budget_exhausted_task_dead_lettered(self, tmp_path):
        fq, cache = _queue(tmp_path)
        fq.record_failure(KEY, worker="w", kind="error", error="x", attempts=3)
        fq.enqueue(_payload(fq, cache, attempts=3, max_attempts=3))
        assert _kinds(audit(fq.root)) == ["budget_exhausted_task"]
        audit(fq.root, repair=True)
        assert not fq.task_path(KEY).exists()
        assert KEY in fq.quarantined_keys()
        letters = [
            json.loads(p.read_text())
            for p in fq.quarantine.glob("*.json")
        ]
        assert any(
            d["kind"] == "retry_budget_exhausted" and d["failures"]
            for d in letters
        )
        assert audit(fq.root) == []

    def test_corrupt_claim_quarantined(self, tmp_path):
        fq, _cache = _queue(tmp_path)
        fq.claim_path(KEY).write_text("")
        assert _kinds(audit(fq.root)) == ["corrupt_claim"]
        audit(fq.root, repair=True)
        assert not fq.claim_path(KEY).exists()
        assert KEY in fq.quarantined_keys()
        assert audit(fq.root) == []

    def test_stale_claim_for_completed_cell(self, tmp_path):
        fq, cache = _queue(tmp_path)
        _complete(fq, cache)
        claim = fq.claim_path(KEY)
        json.dump(_payload(fq, cache), claim.open("w"))
        assert _kinds(audit(fq.root)) == ["stale_claim"]
        audit(fq.root, repair=True)
        assert not claim.exists()
        assert audit(fq.root) == []

    def test_expired_lease_requeued_only_with_bound(self, tmp_path):
        fq, cache = _queue(tmp_path)
        claim = fq.claim_path(KEY)
        payload = dict(_payload(fq, cache), worker="dead-host-1")
        json.dump(payload, claim.open("w"))
        old = time.time() - 5000.0
        os.utime(claim, (old, old))

        # without --lease-timeout an old claim is NOT a finding: a live
        # worker may simply be mid-cell with slow heartbeats
        assert audit(fq.root) == []

        findings = audit(fq.root, lease_timeout=60.0)
        assert _kinds(findings) == ["expired_lease"]
        audit(fq.root, lease_timeout=60.0, repair=True)
        assert not claim.exists()
        task = json.loads(fq.task_path(KEY).read_text())
        assert task["key"] == KEY
        assert "worker" not in task  # republished claimable, not leased
        assert audit(fq.root, lease_timeout=60.0) == []

    def test_stale_tmp_litter(self, tmp_path):
        fq, cache = _queue(tmp_path)
        litter = [
            fq.tasks / f"{KEY}.json.tmp.123-abcd",
            cache.root / f"{KEY}.json.tmp.99-beef",
        ]
        for path in litter:
            path.write_text("{")
        assert _kinds(audit(fq.root)) == ["stale_tmp", "stale_tmp"]
        audit(fq.root, repair=True)
        assert not any(p.exists() for p in litter)
        assert audit(fq.root) == []

    def test_one_repair_pass_fixes_compound_damage(self, tmp_path):
        # A torn cache entry also invalidates its done marker: one
        # --repair pass must fix both (cache is scanned before done/).
        fq, cache = _queue(tmp_path)
        _complete(fq, cache)
        (cache.root / f"{KEY}.json").write_text('{"half')
        findings = audit(fq.root, repair=True)
        assert _kinds(findings) == ["corrupt_cache_entry", "done_without_result"]
        assert all(f.repaired for f in findings)
        assert audit(fq.root) == []


class TestFsckCli:
    def test_exit_codes_and_repair(self, tmp_path, capsys):
        fq, _cache = _queue(tmp_path)
        assert fsck_main([str(fq.root)]) == 0
        assert "clean" in capsys.readouterr().out

        fq.task_path(KEY).write_text("garbage")
        assert fsck_main([str(fq.root)]) == 1
        out = capsys.readouterr().out
        assert "corrupt_task" in out and "1 finding(s)" in out

        assert fsck_main([str(fq.root), "--repair"]) == 0
        out = capsys.readouterr().out
        assert "repaired" in out and "quarantined cell(s)" in out

    def test_json_report(self, tmp_path, capsys):
        from repro.analysis.audit.records import read_findings

        fq, _cache = _queue(tmp_path)
        (fq.done / f"{KEY}.json").write_text("nope")
        assert fsck_main([str(fq.root), "--json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["tool"] == "tfrc-sweep-fsck"
        assert report["clean"] is False
        # the canonical findings-record schema shared with tfrc-audit
        records = read_findings(report)
        assert [f["rule"] for f in records] == ["fsck.corrupt_done"]
        assert records[0]["severity"] == "error"
        assert records[0]["line"] == 0
        assert "repaired" not in records[0]  # extras only when set

        assert fsck_main([str(fq.root), "--json", "--repair"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert read_findings(report)[0]["repaired"]

        assert fsck_main([str(fq.root), "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["clean"] is True

    def test_usage_errors(self, tmp_path):
        with pytest.raises(SystemExit) as exc:
            fsck_main([str(tmp_path / "missing")])
        assert exc.value.code == 2
        (tmp_path / "q").mkdir()
        with pytest.raises(SystemExit) as exc:
            fsck_main([str(tmp_path / "q"), "--lease-timeout", "0"])
        assert exc.value.code == 2
