"""The ``vector`` sweep executor: batching, fallback, cache identity.

What the executor promises on top of the kernel's bit-identity
(``tests/test_vector_kernel.py``):

* a sweep run with ``executor="vector"`` writes **byte-identical**
  ``ResultCache`` files to a serial run of the same grid -- cache entries
  are executor-agnostic, so crash-resume and the file-queue fabric compose
  with the vector path for free;
* unsupported cells fall back to scalar execution announced by exactly one
  ``VectorFallbackWarning``, never an error;
* a ``tfrc-sweep-worker --vector-batch N`` drains compatible queued cells
  as one lockstep batch with the same cache bytes and per-cell done
  markers as one-at-a-time draining.
"""

from __future__ import annotations

import json
import warnings

import pytest

from repro.scenarios import (
    EQUATION_GRID_SCENARIO,
    ResultCache,
    ScenarioSpec,
    SweepRunner,
    VectorExecutor,
    VectorFallbackWarning,
    batch_key,
    resolve_executor,
    run_scenario,
    run_vector_batch,
    spec_to_cell_params,
    vector_capability,
)
from repro.scenarios.executors import EXECUTOR_NAMES, FileQueue
from repro.scenarios.worker import drain
from repro.sim.vector_kernel import run_cell_scalar


def grid_spec(duration=3.0, **extra):
    return ScenarioSpec(
        EQUATION_GRID_SCENARIO,
        topology={"rtt": 0.1, "bandwidth_bps": 1.5e6, "packet_size": 1000},
        queue={"type": "red", "buffer_packets": 25},
        loss={"rate": 0.02},
        duration=duration,
        extra=extra,
    )


GRID = {
    "topology.rtt": [0.06, 0.14],
    "loss.rate": [0.0, 0.04],
    "seed": [1, 2, 3],
}


def run_grid(tmp_path, executor, base=None, grid=None):
    cache_dir = tmp_path / executor
    runner = SweepRunner(
        base if base is not None else grid_spec(),
        grid if grid is not None else GRID,
        executor=executor,
        cache_dir=str(cache_dir),
    )
    return runner.run(), cache_dir


class TestVectorExecutor:
    def test_registered_name(self):
        assert "vector" in EXECUTOR_NAMES
        assert isinstance(resolve_executor("vector"), VectorExecutor)

    def test_cache_files_byte_identical_to_serial(self, tmp_path):
        """The acceptance pin: same grid, same cache bytes, either executor."""
        serial, serial_dir = run_grid(tmp_path, "serial")
        vector, vector_dir = run_grid(tmp_path, "vector")
        assert [c.result for c in vector.cells] == [
            c.result for c in serial.cells
        ]
        names = sorted(p.name for p in serial_dir.iterdir())
        assert names == sorted(p.name for p in vector_dir.iterdir())
        assert len(names) == 12
        for name in names:
            assert (serial_dir / name).read_bytes() == (
                vector_dir / name
            ).read_bytes(), f"cache file {name} differs between executors"

    def test_unsupported_cells_fall_back_with_single_warning(self, tmp_path):
        """A grid mixing batchable and trace cells completes, warns once,
        and still matches serial results cell-for-cell."""
        grid = {"seed": [1, 2], "extra.trace": [False, True]}
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            vector, _ = run_grid(
                tmp_path, "vector", base=grid_spec(), grid=grid
            )
        fallbacks = [w for w in caught
                     if issubclass(w.category, VectorFallbackWarning)]
        assert len(fallbacks) == 1
        assert "2 of 4" in str(fallbacks[0].message)
        assert "extra.trace" in str(fallbacks[0].message)
        serial, _ = run_grid(tmp_path, "serial", base=grid_spec(), grid=grid)
        assert [c.result for c in vector.cells] == [
            c.result for c in serial.cells
        ]
        traced = [c.result for c in vector.cells
                  if c.spec.extra.get("trace")]
        assert traced and all("rate_trace" in r for r in traced)

    def test_fully_supported_grid_does_not_warn(self, tmp_path):
        with warnings.catch_warnings():
            warnings.simplefilter("error", VectorFallbackWarning)
            run_grid(tmp_path, "vector")


class TestCapabilityAndBatching:
    def test_supported_spec(self):
        assert vector_capability(grid_spec()) is None

    def test_foreign_scenario_rejected_with_reason(self):
        spec = ScenarioSpec("mixed_dumbbell", duration=1.0)
        reason = vector_capability(spec)
        assert reason is not None and "mixed_dumbbell" in reason

    def test_trace_rejected_with_reason(self):
        reason = vector_capability(grid_spec(trace=True))
        assert reason is not None and "trace" in reason

    def test_batch_key_blanks_only_batch_axes(self):
        base = grid_spec()
        assert batch_key(base) == batch_key(
            base.override({"topology.rtt": 0.2, "loss.rate": 0.1, "seed": 99})
        )
        assert batch_key(base) != batch_key(base.override({"duration": 9.0}))
        assert batch_key(base) != batch_key(
            base.override({"queue.type": "droptail"})
        )

    def test_run_vector_batch_singleton_matches_scalar(self):
        spec = grid_spec()
        assert run_vector_batch([spec]) == [
            run_cell_scalar(spec_to_cell_params(spec))
        ]

    def test_registered_scenario_runs_scalar(self):
        spec = grid_spec()
        assert run_scenario(spec) == run_cell_scalar(
            spec_to_cell_params(spec)
        )


class TestWorkerVectorBatch:
    def _enqueue_grid(self, queue_root, cache_dir):
        fq = FileQueue(queue_root).ensure()
        specs = SweepRunner(grid_spec(), GRID).cells()
        for cell in specs:
            fq.enqueue({
                "key": f"{cell.spec.scenario}-{cell.spec.spec_hash()}",
                "module": "repro.scenarios.vector",
                "spec": cell.spec.to_dict(),
                "cache_dir": str(cache_dir),
                "attempts": 0,
                "max_attempts": 1,
            })
        return fq, [cell.spec for cell in specs]

    def test_batched_drain_matches_serial_cache(self, tmp_path):
        serial, serial_dir = run_grid(tmp_path, "serial")
        fq, specs = self._enqueue_grid(
            tmp_path / "queue", tmp_path / "worker-cache"
        )
        executed = drain(
            str(tmp_path / "queue"),
            worker_id="test-worker",
            once=True,
            verbose=False,
            batch_limit=64,
        )
        # All 12 compatible cells drain as ONE lockstep batch.
        assert executed == 1
        cache = ResultCache(tmp_path / "worker-cache")
        for spec in specs:
            assert cache.get(spec) is not None
            done = fq.done_path(f"{spec.scenario}-{spec.spec_hash()}")
            assert done.exists()
            assert json.loads(done.read_text())["worker"] == "test-worker"
        for path in serial_dir.iterdir():
            assert path.read_bytes() == (
                tmp_path / "worker-cache" / path.name
            ).read_bytes(), f"worker cache file {path.name} differs"
        assert not list(fq.tasks.iterdir())
        assert not list(fq.claims.iterdir())

    def test_unbatched_drain_same_cache(self, tmp_path):
        """batch_limit=1 (the default) drains one cell at a time with the
        same bytes -- the batching is purely a scheduling optimization."""
        serial, serial_dir = run_grid(tmp_path, "serial")
        fq, specs = self._enqueue_grid(
            tmp_path / "queue", tmp_path / "worker-cache"
        )
        executed = drain(
            str(tmp_path / "queue"),
            worker_id="test-worker",
            once=True,
            verbose=False,
        )
        assert executed == len(specs)
        for path in serial_dir.iterdir():
            assert path.read_bytes() == (
                tmp_path / "worker-cache" / path.name
            ).read_bytes()

    def test_batch_mates_respect_group_boundaries(self, tmp_path):
        """Cells from two batch groups (different durations) never share a
        lockstep batch, but both groups drain completely."""
        fq = FileQueue(tmp_path / "queue").ensure()
        specs = []
        for duration in (2.0, 3.0):
            for seed in (1, 2):
                spec = grid_spec(duration=duration).override({"seed": seed})
                specs.append(spec)
                fq.enqueue({
                    "key": f"{spec.scenario}-{spec.spec_hash()}",
                    "module": "repro.scenarios.vector",
                    "spec": spec.to_dict(),
                    "cache_dir": str(tmp_path / "cache"),
                    "attempts": 0,
                    "max_attempts": 1,
                })
        executed = drain(
            str(tmp_path / "queue"),
            worker_id="test-worker",
            once=True,
            verbose=False,
            batch_limit=64,
        )
        # One batched round per duration group.
        assert executed == 2
        cache = ResultCache(tmp_path / "cache")
        for spec in specs:
            assert cache.get(spec) == run_scenario(spec)


class TestCliThreading:
    def test_runner_accepts_vector_executor(self, capsys):
        """`--executor vector` threads through the experiments CLI; a
        non-grid figure sweep completes on the scalar fallback path."""
        from repro.experiments import runner

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", VectorFallbackWarning)
            assert runner.main(
                ["fig05", "--quick", "--executor", "vector"]
            ) == 0
        capsys.readouterr()

    def test_worker_rejects_bad_vector_batch(self, capsys):
        from repro.scenarios.worker import main

        with pytest.raises(SystemExit):
            main(["ignored", "--vector-batch", "0"])
