"""Unit tests for the TCP sink (ACK generation, SACK blocks, delayed ACKs).

The SACK test classes run against both bookkeeping paths (the incremental
interval structure and the legacy per-seq set) -- the deeper cross-path
fuzzing lives in ``tests/test_net_fastpath.py``.
"""

import pytest

from repro.net.packet import Packet, PacketType
from repro.sim.engine import Simulator
from repro.tcp.sink import TCPSink

pytestmark = pytest.mark.parametrize("incremental", [True, False])


def data(seq, flow="f", sent_at=0.0):
    return Packet(flow_id=flow, seq=seq, size=1000, sent_at=sent_at)


def make(sim, incremental, **kwargs):
    acks = []
    sink = TCPSink(
        sim, "f", send_ack=acks.append, incremental_sack=incremental, **kwargs
    )
    return sink, acks


class TestCumulativeAcks:
    def test_in_order_acks(self, incremental):
        sim = Simulator()
        sink, acks = make(sim, incremental)
        for i in range(3):
            sink.receive(data(i))
        assert [a.seq for a in acks] == [1, 2, 3]

    def test_gap_generates_dupacks(self, incremental):
        sim = Simulator()
        sink, acks = make(sim, incremental)
        sink.receive(data(0))
        sink.receive(data(2))  # hole at 1
        sink.receive(data(3))
        assert [a.seq for a in acks] == [1, 1, 1]

    def test_gap_fill_jumps_cumack(self, incremental):
        sim = Simulator()
        sink, acks = make(sim, incremental)
        sink.receive(data(0))
        sink.receive(data(2))
        sink.receive(data(1))
        assert acks[-1].seq == 3

    def test_ack_echoes_timestamp_and_seq(self, incremental):
        sim = Simulator()
        sink, acks = make(sim, incremental)
        sink.receive(data(0, sent_at=0.123))
        assert acks[0].payload.echo_ts == 0.123
        assert acks[0].payload.echo_seq == 0

    def test_duplicate_data_counted_and_acked(self, incremental):
        sim = Simulator()
        sink, acks = make(sim, incremental)
        sink.receive(data(0))
        sink.receive(data(0))
        assert sink.duplicate_data == 1
        assert len(acks) == 2

    def test_below_cumack_duplicate_counted(self, incremental):
        sim = Simulator()
        sink, acks = make(sim, incremental)
        for i in range(3):
            sink.receive(data(i))
        sink.receive(data(1))  # far below next_expected
        assert sink.duplicate_data == 1
        assert acks[-1].seq == 3

    def test_non_data_ignored(self, incremental):
        sim = Simulator()
        sink, acks = make(sim, incremental)
        sink.receive(Packet(flow_id="f", seq=0, size=40, ptype=PacketType.ACK))
        assert acks == []
        assert sink.packets_received == 0

    def test_on_data_hook(self, incremental):
        sim = Simulator()
        seen = []
        sink = TCPSink(sim, "f", send_ack=lambda a: None,
                       incremental_sack=incremental,
                       on_data=lambda t, p: seen.append(p.seq))
        sink.receive(data(0))
        assert seen == [0]


class TestSackBlocks:
    def test_single_block(self, incremental):
        sim = Simulator()
        sink, acks = make(sim, incremental)
        sink.receive(data(0))
        sink.receive(data(2))
        assert acks[-1].payload.sack_blocks == [(2, 3)]

    def test_blocks_merge_contiguous(self, incremental):
        sim = Simulator()
        sink, acks = make(sim, incremental)
        sink.receive(data(0))
        sink.receive(data(2))
        sink.receive(data(3))
        assert acks[-1].payload.sack_blocks == [(2, 4)]

    def test_bridge_merges_two_blocks(self, incremental):
        sim = Simulator()
        sink, acks = make(sim, incremental)
        sink.receive(data(0))
        sink.receive(data(2))
        sink.receive(data(4))
        sink.receive(data(3))  # bridges (2,3) and (4,5)
        assert acks[-1].payload.sack_blocks == [(2, 5)]

    def test_at_most_three_blocks_newest_first(self, incremental):
        sim = Simulator()
        sink, acks = make(sim, incremental)
        sink.receive(data(0))
        for seq in (2, 4, 6, 8):
            sink.receive(data(seq))
        blocks = acks[-1].payload.sack_blocks
        assert len(blocks) == 3
        # Ascending arrivals: recency order coincides with highest-first.
        assert blocks == [(8, 9), (6, 7), (4, 5)]

    def test_blocks_empty_when_in_order(self, incremental):
        sim = Simulator()
        sink, acks = make(sim, incremental)
        sink.receive(data(0))
        assert acks[-1].payload.sack_blocks == []


class TestSackRecencyOrdering:
    """RFC 2018 section 4: the first SACK block MUST report the block
    containing the most recently received segment -- not the block with the
    highest sequence numbers (the pre-fix behaviour)."""

    def test_first_block_reports_latest_arrival_not_highest_seq(self, incremental):
        sim = Simulator()
        sink, acks = make(sim, incremental)
        sink.receive(data(0))
        sink.receive(data(6))  # older out-of-order data, higher sequence
        sink.receive(data(2))  # most recent arrival, lower sequence
        assert acks[-1].payload.sack_blocks == [(2, 3), (6, 7)]

    def test_extending_a_block_refreshes_its_recency(self, incremental):
        sim = Simulator()
        sink, acks = make(sim, incremental)
        sink.receive(data(0))
        sink.receive(data(2))
        sink.receive(data(6))
        sink.receive(data(3))  # extends (2,3) -> (2,4): now the newest block
        assert acks[-1].payload.sack_blocks == [(2, 4), (6, 7)]

    def test_duplicate_out_of_order_data_refreshes_recency(self, incremental):
        sim = Simulator()
        sink, acks = make(sim, incremental)
        sink.receive(data(0))
        sink.receive(data(2))
        sink.receive(data(6))
        sink.receive(data(2))  # duplicate of held data: still most recent
        assert sink.duplicate_data == 1
        assert acks[-1].payload.sack_blocks == [(2, 3), (6, 7)]

    def test_oldest_block_evicted_when_over_limit(self, incremental):
        sim = Simulator()
        sink, acks = make(sim, incremental)
        sink.receive(data(0))
        for seq in (8, 6, 4, 2):  # descending: 2 is newest, 8 oldest
            sink.receive(data(seq))
        blocks = acks[-1].payload.sack_blocks
        assert blocks == [(2, 3), (4, 5), (6, 7)]  # (8, 9) dropped: oldest

    def test_cumack_advance_prunes_recency_state(self, incremental):
        sim = Simulator()
        sink, acks = make(sim, incremental)
        sink.receive(data(0))
        sink.receive(data(2))
        sink.receive(data(1))  # fills the gap: cumack jumps to 3
        assert acks[-1].payload.sack_blocks == []
        if incremental:
            assert sink._blk_starts == []
            assert sink._blk_ends == []
            assert sink._blk_recency == []
        else:
            assert sink._arrival_order == {}


class TestDelayedAcks:
    def test_second_packet_flushes_immediately(self, incremental):
        sim = Simulator()
        sink, acks = make(sim, incremental, delayed_ack=True)
        sink.receive(data(0))
        assert acks == []  # held
        sink.receive(data(1))
        assert [a.seq for a in acks] == [2]

    def test_delack_timer_flushes_single_packet(self, incremental):
        sim = Simulator()
        sink, acks = make(sim, incremental, delayed_ack=True,
                          delack_interval=0.2)
        sink.receive(data(0))
        sim.run(until=0.3)
        assert [a.seq for a in acks] == [1]

    def test_out_of_order_acks_immediately_despite_delack(self, incremental):
        sim = Simulator()
        sink, acks = make(sim, incremental, delayed_ack=True)
        sink.receive(data(0))
        sink.receive(data(2))  # gap: must ACK at once (and flush pending)
        assert len(acks) >= 1
        assert acks[-1].seq == 1


class TestDelayedAckTimestampEcho:
    """RFC 7323 section 4.2: an ACK covering a delayed (held) segment must
    echo the *first* (earliest) pending segment's timestamp, so the
    delayed-ACK hold time is included in the measured RTT and the RTO stays
    conservative.  The pre-fix behaviour echoed the triggering (second)
    segment, silently shaving the hold time off every delayed-ACK RTT
    sample.
    """

    def test_second_segment_ack_echoes_first_segment_timestamp(self, incremental):
        sim = Simulator()
        sink, acks = make(sim, incremental, delayed_ack=True)
        sim.schedule(0.00, lambda: sink.receive(data(0, sent_at=0.00)))
        sim.schedule(0.05, lambda: sink.receive(data(1, sent_at=0.05)))
        sim.run(until=0.1)
        assert [a.seq for a in acks] == [2]
        assert acks[0].payload.echo_ts == 0.00
        assert acks[0].payload.echo_seq == 0

    def test_out_of_order_flush_echoes_pending_segment(self, incremental):
        sim = Simulator()
        sink, acks = make(sim, incremental, delayed_ack=True)
        sim.schedule(0.00, lambda: sink.receive(data(0, sent_at=0.00)))
        # An out-of-order segment flushes the held ACK: the echo must still
        # come from the earliest pending in-order segment.
        sim.schedule(0.05, lambda: sink.receive(data(2, sent_at=0.05)))
        sim.run(until=0.1)
        assert [a.seq for a in acks] == [1]
        assert acks[0].payload.echo_ts == 0.00
        assert acks[0].payload.echo_seq == 0

    def test_measured_rtt_includes_delack_hold_time(self, incremental):
        """End-to-end RTT accounting: data sent at t=0 arrives at t=0.04,
        is held by the delayed-ACK timer, and the second segment triggers
        the ACK at t=0.06.  A sender receiving that ACK after another 0.04s
        one-way delay measures now - echo_ts = 0.10 -- the full RTT
        including the hold -- not 0.08 (the pre-fix sample, which would
        underestimate the RTO floor the receiver's delack imposes).
        """
        sim = Simulator()
        sink, acks = make(sim, incremental, delayed_ack=True)
        sim.schedule(0.04, lambda: sink.receive(data(0, sent_at=0.00)))
        sim.schedule(0.06, lambda: sink.receive(data(1, sent_at=0.02)))
        sim.run(until=0.1)
        assert len(acks) == 1
        ack = acks[0]
        ack_emit_time = 0.06
        sender_receives_at = ack_emit_time + 0.04
        measured_rtt = sender_receives_at - ack.payload.echo_ts
        assert measured_rtt == pytest.approx(0.10)
