"""Unit tests for the TCP sink (ACK generation, SACK blocks, delayed ACKs)."""

import pytest

from repro.net.packet import Packet, PacketType
from repro.sim.engine import Simulator
from repro.tcp.sink import TCPSink


def data(seq, flow="f", sent_at=0.0):
    return Packet(flow_id=flow, seq=seq, size=1000, sent_at=sent_at)


class TestCumulativeAcks:
    def make(self, sim, **kwargs):
        acks = []
        sink = TCPSink(sim, "f", send_ack=acks.append, **kwargs)
        return sink, acks

    def test_in_order_acks(self):
        sim = Simulator()
        sink, acks = self.make(sim)
        for i in range(3):
            sink.receive(data(i))
        assert [a.seq for a in acks] == [1, 2, 3]

    def test_gap_generates_dupacks(self):
        sim = Simulator()
        sink, acks = self.make(sim)
        sink.receive(data(0))
        sink.receive(data(2))  # hole at 1
        sink.receive(data(3))
        assert [a.seq for a in acks] == [1, 1, 1]

    def test_gap_fill_jumps_cumack(self):
        sim = Simulator()
        sink, acks = self.make(sim)
        sink.receive(data(0))
        sink.receive(data(2))
        sink.receive(data(1))
        assert acks[-1].seq == 3

    def test_ack_echoes_timestamp_and_seq(self):
        sim = Simulator()
        sink, acks = self.make(sim)
        sink.receive(data(0, sent_at=0.123))
        assert acks[0].payload.echo_ts == 0.123
        assert acks[0].payload.echo_seq == 0

    def test_duplicate_data_counted_and_acked(self):
        sim = Simulator()
        sink, acks = self.make(sim)
        sink.receive(data(0))
        sink.receive(data(0))
        assert sink.duplicate_data == 1
        assert len(acks) == 2

    def test_non_data_ignored(self):
        sim = Simulator()
        sink, acks = self.make(sim)
        sink.receive(Packet(flow_id="f", seq=0, size=40, ptype=PacketType.ACK))
        assert acks == []
        assert sink.packets_received == 0

    def test_on_data_hook(self):
        sim = Simulator()
        seen = []
        sink = TCPSink(sim, "f", send_ack=lambda a: None,
                       on_data=lambda t, p: seen.append(p.seq))
        sink.receive(data(0))
        assert seen == [0]


class TestSackBlocks:
    def test_single_block(self):
        sim = Simulator()
        acks = []
        sink = TCPSink(sim, "f", send_ack=acks.append)
        sink.receive(data(0))
        sink.receive(data(2))
        assert acks[-1].payload.sack_blocks == [(2, 3)]

    def test_blocks_merge_contiguous(self):
        sim = Simulator()
        acks = []
        sink = TCPSink(sim, "f", send_ack=acks.append)
        sink.receive(data(0))
        sink.receive(data(2))
        sink.receive(data(3))
        assert acks[-1].payload.sack_blocks == [(2, 4)]

    def test_at_most_three_blocks_newest_first(self):
        sim = Simulator()
        acks = []
        sink = TCPSink(sim, "f", send_ack=acks.append)
        sink.receive(data(0))
        for seq in (2, 4, 6, 8):
            sink.receive(data(seq))
        blocks = acks[-1].payload.sack_blocks
        assert len(blocks) == 3
        # Ascending arrivals: recency order coincides with highest-first.
        assert blocks == [(8, 9), (6, 7), (4, 5)]

    def test_blocks_empty_when_in_order(self):
        sim = Simulator()
        acks = []
        sink = TCPSink(sim, "f", send_ack=acks.append)
        sink.receive(data(0))
        assert acks[-1].payload.sack_blocks == []


class TestSackRecencyOrdering:
    """RFC 2018 section 4: the first SACK block MUST report the block
    containing the most recently received segment -- not the block with the
    highest sequence numbers (the pre-fix behaviour)."""

    def make(self):
        sim = Simulator()
        acks = []
        sink = TCPSink(sim, "f", send_ack=acks.append)
        return sink, acks

    def test_first_block_reports_latest_arrival_not_highest_seq(self):
        sink, acks = self.make()
        sink.receive(data(0))
        sink.receive(data(6))  # older out-of-order data, higher sequence
        sink.receive(data(2))  # most recent arrival, lower sequence
        assert acks[-1].payload.sack_blocks == [(2, 3), (6, 7)]

    def test_extending_a_block_refreshes_its_recency(self):
        sink, acks = self.make()
        sink.receive(data(0))
        sink.receive(data(2))
        sink.receive(data(6))
        sink.receive(data(3))  # extends (2,3) -> (2,4): now the newest block
        assert acks[-1].payload.sack_blocks == [(2, 4), (6, 7)]

    def test_duplicate_out_of_order_data_refreshes_recency(self):
        sink, acks = self.make()
        sink.receive(data(0))
        sink.receive(data(2))
        sink.receive(data(6))
        sink.receive(data(2))  # duplicate of held data: still most recent
        assert sink.duplicate_data == 1
        assert acks[-1].payload.sack_blocks == [(2, 3), (6, 7)]

    def test_oldest_block_evicted_when_over_limit(self):
        sink, acks = self.make()
        sink.receive(data(0))
        for seq in (8, 6, 4, 2):  # descending: 2 is newest, 8 oldest
            sink.receive(data(seq))
        blocks = acks[-1].payload.sack_blocks
        assert blocks == [(2, 3), (4, 5), (6, 7)]  # (8, 9) dropped: oldest

    def test_cumack_advance_prunes_recency_state(self):
        sink, acks = self.make()
        sink.receive(data(0))
        sink.receive(data(2))
        sink.receive(data(1))  # fills the gap: cumack jumps to 3
        assert acks[-1].payload.sack_blocks == []
        assert sink._arrival_order == {}


class TestDelayedAcks:
    def test_second_packet_flushes_immediately(self):
        sim = Simulator()
        acks = []
        sink = TCPSink(sim, "f", send_ack=acks.append, delayed_ack=True)
        sink.receive(data(0))
        assert acks == []  # held
        sink.receive(data(1))
        assert [a.seq for a in acks] == [2]

    def test_delack_timer_flushes_single_packet(self):
        sim = Simulator()
        acks = []
        sink = TCPSink(sim, "f", send_ack=acks.append, delayed_ack=True,
                       delack_interval=0.2)
        sink.receive(data(0))
        sim.run(until=0.3)
        assert [a.seq for a in acks] == [1]

    def test_out_of_order_acks_immediately_despite_delack(self):
        sim = Simulator()
        acks = []
        sink = TCPSink(sim, "f", send_ack=acks.append, delayed_ack=True)
        sink.receive(data(0))
        sink.receive(data(2))  # gap: must ACK at once (and flush pending)
        assert len(acks) >= 1
        assert acks[-1].seq == 1
