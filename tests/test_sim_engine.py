"""Unit tests for the discrete-event engine."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.sim.engine import SimulationError, Simulator


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(2.0, lambda: order.append("b"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(3.0, lambda: order.append("c"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [1.5]

    def test_ties_broken_by_priority_then_fifo(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, lambda: order.append("first"))
        sim.schedule(1.0, lambda: order.append("second"))
        sim.schedule(1.0, lambda: order.append("prio"), priority=-1)
        sim.run()
        assert order == ["prio", "first", "second"]

    def test_schedule_in_is_relative(self):
        sim = Simulator()
        times = []
        sim.schedule(1.0, lambda: sim.schedule_in(0.5, lambda: times.append(sim.now)))
        sim.run()
        assert times == [1.5]

    def test_scheduling_in_past_raises(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule(0.5, lambda: None)

    def test_negative_delay_raises(self):
        with pytest.raises(SimulationError):
            Simulator().schedule_in(-0.1, lambda: None)

    def test_non_finite_time_raises(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(math.inf, lambda: None)
        with pytest.raises(SimulationError):
            sim.schedule(math.nan, lambda: None)

    def test_callback_args_passed(self):
        sim = Simulator()
        got = []
        sim.schedule(1.0, lambda a, b: got.append((a, b)), 1, "x")
        sim.run()
        assert got == [(1, "x")]


class TestRunControl:
    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(5.0, lambda: fired.append(5))
        sim.run(until=2.0)
        assert fired == [1]
        assert sim.now == 2.0

    def test_run_until_then_resume(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(5.0, lambda: fired.append(5))
        sim.run(until=2.0)
        sim.run(until=10.0)
        assert fired == [1, 5]

    def test_stop_halts_loop(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: (fired.append(1), sim.stop()))
        sim.schedule(2.0, lambda: fired.append(2))
        sim.run()
        assert fired == [(1, None)] or fired[0] is not None  # stop() ran
        assert len(fired) == 1

    def test_max_events(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.schedule(float(i + 1), lambda i=i: fired.append(i))
        sim.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_events_processed_counter(self):
        sim = Simulator()
        for i in range(4):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert sim.events_processed == 4

    def test_reset(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        sim.reset()
        assert sim.now == 0.0
        assert sim.pending_count() == 0


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, lambda: fired.append(1))
        event.cancel()
        sim.run()
        assert fired == []

    def test_pending_count_excludes_cancelled(self):
        sim = Simulator()
        keep = sim.schedule(1.0, lambda: None)
        drop = sim.schedule(2.0, lambda: None)
        drop.cancel()
        assert sim.pending_count() == 1

    def test_peek_time_skips_cancelled(self):
        sim = Simulator()
        first = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        first.cancel()
        assert sim.peek_time() == 2.0

    def test_peek_time_empty(self):
        assert Simulator().peek_time() is None


class TestDeterminism:
    @given(st.lists(st.floats(min_value=0.001, max_value=1000.0), min_size=1, max_size=50))
    def test_any_schedule_order_executes_sorted(self, times):
        sim = Simulator()
        seen = []
        for t in times:
            sim.schedule(t, lambda t=t: seen.append(t))
        sim.run()
        assert seen == sorted(seen)
        assert len(seen) == len(times)

    def test_same_time_events_fifo_within_priority(self):
        sim = Simulator()
        seen = []
        for i in range(100):
            sim.schedule(1.0, lambda i=i: seen.append(i))
        sim.run()
        assert seen == list(range(100))
