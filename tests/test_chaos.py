"""Chaos-hardening of the sweep fabric: deterministic fault injection
(`repro.scenarios.faults`), checksummed/durable cache entries, poison-cell
quarantine, and the acceptance soak -- a real multi-worker queue sweep
under a seeded FaultPlan whose ResultCache comes out byte-identical to a
clean serial run, with ``tfrc-sweep-fsck`` reporting a repairable-to-clean
state afterwards."""

import json
import os
import time

import pytest

import _executor_probe  # noqa: F401  (registers the "executor_probe" scenario)
from repro.scenarios import (
    EQUATION_GRID_SCENARIO,
    FaultInjectionError,
    FaultPlan,
    FileQueue,
    FileQueueExecutor,
    ResultCache,
    ScenarioSpec,
    SweepCellError,
    SweepRunner,
)
from repro.scenarios import faults
from repro.scenarios.cache import payload_checksum, verify_entry
from repro.scenarios.fsck import audit

BASE_PROBE = ScenarioSpec("executor_probe", seed=3, extra={"x": 0})


def grid_base(duration=1.0):
    return ScenarioSpec(
        EQUATION_GRID_SCENARIO,
        topology={"rtt": 0.1, "bandwidth_bps": 1.5e6, "packet_size": 1000},
        queue={"type": "red", "buffer_packets": 25},
        loss={"rate": 0.02},
        duration=duration,
    )


SOAK_GRID = {
    "topology.rtt": [0.05, 0.08, 0.12, 0.2],
    "loss.rate": [0.0, 0.01, 0.02, 0.05],
    "seed": [1, 2, 3, 4],
}


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    """Every test starts and ends with fault injection disabled."""
    faults.uninstall()
    yield
    faults.uninstall()


class TestFaultPlan:
    def test_decisions_are_pure_and_cross_instance(self):
        a = FaultPlan(seed=7, rates={"worker_kill": 0.3})
        b = FaultPlan(seed=7, rates={"worker_kill": 0.3})
        keys = [f"cell-{i}" for i in range(200)]
        assert [a.decide("worker_kill", k) for k in keys] == [
            b.decide("worker_kill", k) for k in keys
        ]
        # roughly the configured rate actually fires
        fired = sum(a.decide("worker_kill", k) for k in keys)
        assert 30 <= fired <= 90

    def test_attempt_changes_the_decision_schedule(self):
        plan = FaultPlan(seed=1, rates={"worker_kill": 0.5})
        keys = [f"cell-{i}" for i in range(64)]
        first = [plan.decide("worker_kill", k, 0) for k in keys]
        second = [plan.decide("worker_kill", k, 1) for k in keys]
        assert first != second  # retries get fresh decisions

    def test_bad_site_and_rate_rejected(self):
        with pytest.raises(FaultInjectionError):
            FaultPlan(rates={"bogus_site": 0.1})
        with pytest.raises(FaultInjectionError):
            FaultPlan(rates={"worker_kill": 1.5})

    def test_dump_load_roundtrip_and_env_activation(self, tmp_path, monkeypatch):
        plan = FaultPlan(
            seed=9,
            rates={"torn_cache_write": 0.25},
            log_dir=str(tmp_path / "log"),
        )
        path = plan.dump(tmp_path / "plan.json")
        assert FaultPlan.load(path).to_dict() == plan.to_dict()
        monkeypatch.setenv(faults.ENV_VAR, str(path))
        faults.uninstall()  # force the env lookup to happen afresh
        active = faults.active()
        assert active is not None and active.seed == 9

    def test_disabled_hooks_are_inert(self):
        assert faults.active() is None
        assert faults.fires("worker_kill", "any-key") is False
        assert faults.skewed_claim_time("any-key") is None
        assert faults.heartbeat_stalled("any-key") == 0.0

    def test_fired_faults_logged_once(self, tmp_path):
        plan = FaultPlan(
            seed=0, rates={"worker_kill": 1.0}, log_dir=str(tmp_path / "log")
        )
        for _ in range(3):  # duplicate evaluations must not double-count
            assert plan.fires("worker_kill", "cell-a", 0)
        records = list((tmp_path / "log").glob("*.json"))
        assert len(records) == 1
        assert json.loads(records[0].read_text())["key"] == "cell-a"


class TestCacheHardening:
    def test_entries_are_checksummed(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = BASE_PROBE.override({"extra.x": 1})
        path = cache.put(spec, {"x": 1})
        entry = json.loads(path.read_text())
        assert entry["checksum"] == payload_checksum(entry["spec"], entry["result"])
        assert verify_entry(entry) is None
        assert cache.get(spec) == {"x": 1}

    def test_truncated_entry_quarantined_and_missed(self, tmp_path, capsys):
        cache = ResultCache(tmp_path)
        spec = BASE_PROBE.override({"extra.x": 2})
        path = cache.put(spec, {"x": 2})
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        assert cache.get(spec) is None  # corrupt reads as a miss
        assert not path.exists()
        assert list(cache.quarantine_dir.iterdir())
        assert "quarantined" in capsys.readouterr().err
        # the cell re-executes and the cache heals
        cache.put(spec, {"x": 2})
        assert cache.get(spec) == {"x": 2}

    def test_tampered_result_fails_checksum(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = BASE_PROBE.override({"extra.x": 3})
        path = cache.put(spec, {"x": 3})
        entry = json.loads(path.read_text())
        entry["result"]["x"] = 999  # bit rot / manual edit
        path.write_text(json.dumps(entry))
        status, _result, defect = cache.get_status(spec)
        assert status == "corrupt" and "checksum mismatch" in defect

    def test_pre_checksum_entries_still_readable(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = BASE_PROBE.override({"extra.x": 4})
        cache.entry_path(spec).write_text(
            json.dumps({"result": {"x": 4}, "spec": spec.to_dict()})
        )
        assert cache.get(spec) == {"x": 4}  # old caches keep resuming


class TestClockSkewReclaim:
    def test_skewed_coordinator_clock_does_not_reclaim_live_lease(
        self, tmp_path, monkeypatch
    ):
        """Satellite fix: lease age must be measured against the queue
        directory's own clock (fs_now), not the coordinator's wall clock --
        a coordinator running 1000s fast must not insta-reclaim a healthy
        worker's fresh lease."""
        queue_dir = tmp_path / "q"
        fq = FileQueue(queue_dir).ensure()
        cell = SweepRunner(BASE_PROBE, {"extra.x": [1]}).cells()[0]
        executor = FileQueueExecutor(queue_dir, lease_timeout=30.0)
        executor._module_name = "_executor_probe"
        key = f"executor_probe-{cell.spec.spec_hash()}"
        fq.enqueue(executor._payload(cell, "results", 0))
        claimed = fq.claim_next("healthy-worker")
        assert claimed is not None

        import repro.scenarios.executors as executors_mod

        monkeypatch.setattr(
            executors_mod.time, "time", lambda: time.time() + 1000.0
        )
        executor._reclaim_expired(fq, {key: [cell]}, "results")
        assert fq.claim_path(key).exists()  # lease untouched
        assert fq.failure_count(key) == 0

    def test_fs_now_tracks_filesystem_clock(self, tmp_path):
        fq = FileQueue(tmp_path / "q").ensure()
        before = time.time()
        now = fq.fs_now()
        # Coarse filesystem timestamps allowed for; the point is it is a
        # real current timestamp, not an unrelated clock domain.
        assert abs(now - before) < 5.0


class TestPoisonQuarantine:
    BOOM_GRID = {"extra.x": [1, 2, 3], "extra.boom": [2]}

    def test_raise_mode_carries_quarantine_evidence(self, tmp_path):
        executor = FileQueueExecutor(
            tmp_path / "q", local_workers=1, max_attempts=2,
            poll_interval=0.02, lease_timeout=30.0,
        )
        with pytest.raises(SweepCellError) as excinfo:
            SweepRunner(
                BASE_PROBE, self.BOOM_GRID,
                cache_dir=str(tmp_path / "cache"), executor=executor,
            ).run()
        err = excinfo.value
        assert err.quarantine_path is not None and err.quarantine_path.exists()
        assert err.failures and all(
            "probe exploded on x=2" in r["error"] for r in err.failures
        )
        record = json.loads(err.quarantine_path.read_text())
        assert record["kind"] == "retry_budget_exhausted"
        assert len(record["failures"]) == 2

    def test_quarantine_mode_completes_the_rest(self, tmp_path, capsys):
        queue_dir = tmp_path / "q"
        executor = FileQueueExecutor(
            queue_dir, local_workers=1, max_attempts=2,
            poll_interval=0.02, lease_timeout=30.0, on_poison="quarantine",
        )
        sweep = SweepRunner(
            BASE_PROBE, self.BOOM_GRID,
            cache_dir=str(tmp_path / "cache"), executor=executor,
        ).run()
        poison = sweep.quarantined
        assert [c.overrides["extra.x"] for c in poison] == [2]
        assert poison[0].result is None
        assert "probe exploded on x=2" in poison[0].failure
        finished = [c for c in sweep.cells if c.result is not None]
        assert sorted(c.overrides["extra.x"] for c in finished) == [1, 3]
        # the dead letter is on disk with the failure history
        fq = FileQueue(queue_dir)
        key = (
            f"executor_probe-"
            f"{BASE_PROBE.override({'extra.x': 2, 'extra.boom': 2}).spec_hash()}"
        )
        assert key in fq.quarantined_keys()
        # coordinator summary names the poison cell
        assert "poison cell(s)" in capsys.readouterr().err
        # quarantine is informational: fsck still reports a clean state
        assert audit(queue_dir, cache_dir=tmp_path / "cache") == []

    def test_fresh_run_clears_previous_dead_letters(self, tmp_path):
        """A rerun of the *same* cell after the transient cause is fixed
        must clear the old dead letter and complete, not stay poisoned."""
        queue_dir = tmp_path / "q"
        boom_file = tmp_path / "boom"
        grid = {"extra.x": [1, 2], "extra.boom_file": [str(boom_file)]}

        def attempt():
            executor = FileQueueExecutor(
                queue_dir, local_workers=1, max_attempts=2,
                poll_interval=0.02, lease_timeout=30.0,
                on_poison="quarantine",
            )
            return SweepRunner(
                BASE_PROBE, grid, cache_dir=str(tmp_path / "cache"),
                executor=executor,
            ).run()

        boom_file.write_text("transient outage")
        first = attempt()
        assert len(first.quarantined) == 2
        boom_file.unlink()  # the outage ends; identical specs rerun
        second = attempt()
        assert second.quarantined == []
        assert all(c.result is not None for c in second.cells)
        assert FileQueue(queue_dir).quarantined_keys() == set()


class TestChaosSoak:
    """The acceptance soak: >= 64 queue-executor cells under a seeded
    FaultPlan with every fault kind armed -- byte-identical cache, fault
    coverage from the fired-fault log, fsck-repairable to clean."""

    RATES = {
        "worker_kill": 0.08,
        "batch_kill": 0.15,
        "torn_cache_write": 0.08,
        "corrupt_task_write": 0.06,
        "heartbeat_stall": 0.06,
        "clock_skew": 0.06,
        "delayed_rename": 0.10,
    }

    def test_soak_byte_identical_to_clean_serial_run(
        self, tmp_path, monkeypatch
    ):
        base, grid = grid_base(), SOAK_GRID
        cells = SweepRunner(base, grid).cells()
        assert len(cells) == 64

        # -- clean serial reference (no faults installed)
        clean_dir = tmp_path / "clean-cache"
        clean = SweepRunner(
            base, grid, cache_dir=str(clean_dir), executor="serial"
        ).run()

        # -- chaos run: plan active in-process (coordinator hooks) and via
        #    the environment (spawned tfrc-sweep-worker subprocesses)
        log_dir = tmp_path / "fired"
        plan = FaultPlan(
            seed=1009,
            rates=dict(self.RATES),
            delay_seconds=0.02,
            stall_seconds=3.0,
            skew_seconds=300.0,
            log_dir=str(log_dir),
        )
        plan_path = plan.dump(tmp_path / "plan.json")
        monkeypatch.setenv(faults.ENV_VAR, str(plan_path))
        faults.install(plan)

        queue_dir = tmp_path / "q"
        chaos_dir = tmp_path / "chaos-cache"
        executor = FileQueueExecutor(
            queue_dir,
            local_workers=2,
            lease_timeout=1.0,
            poll_interval=0.02,
            max_attempts=8,
            vector_batch=8,
        )
        chaos = SweepRunner(
            base, grid, cache_dir=str(chaos_dir), executor=executor
        ).run()
        faults.uninstall()
        monkeypatch.delenv(faults.ENV_VAR)

        # -- the sweep converged to the exact clean results
        assert [c.result for c in chaos.cells] == [
            c.result for c in clean.cells
        ]
        clean_bytes = {
            p.name: p.read_bytes() for p in clean_dir.glob("*.json")
        }
        chaos_bytes = {
            p.name: p.read_bytes() for p in chaos_dir.glob("*.json")
        }
        assert len(clean_bytes) == 64
        assert clean_bytes == chaos_bytes

        # -- fault coverage: >= 5 distinct kinds actually fired, including
        #    a mid-vector-batch kill
        fired = {
            json.loads(p.read_text())["site"] for p in log_dir.glob("*.json")
        }
        assert "batch_kill" in fired, f"fired kinds: {sorted(fired)}"
        assert len(fired) >= 5, f"fired kinds: {sorted(fired)}"

        # -- the fabric actually took damage (this was not a clean run)
        fq = FileQueue(queue_dir)
        assert sum(fq.failure_counts().values()) > 0

        # -- fsck: one repair pass over the post-soak state, then clean
        audit(queue_dir, cache_dir=chaos_dir, repair=True)
        assert audit(queue_dir, cache_dir=chaos_dir) == []

    def test_fault_injection_disabled_is_default(self):
        """The zero-overhead guard's precondition: nothing leaks a plan
        into normal runs (the bench guard measures the actual overhead)."""
        assert faults.active() is None

    def test_bench_refuses_to_run_under_a_fault_plan(
        self, tmp_path, monkeypatch, capsys
    ):
        """Chaos timings must never land in a perf-trajectory baseline."""
        from repro.perf import bench

        plan = faults.FaultPlan(seed=1, rates={"delayed_rename": 1.0})
        plan_path = plan.dump(tmp_path / "plan.json")
        monkeypatch.setenv(faults.ENV_VAR, str(plan_path))
        with pytest.raises(SystemExit) as exc:
            bench.main(["--suite", "smoke"])
        assert exc.value.code == 2
        assert "refusing to benchmark" in capsys.readouterr().err
