"""The endpoint fast path must be a pure bookkeeping optimization.

Runs the dumbbell and ON/OFF scenarios once on the fast path (FastTimer,
columnar tracer/monitors, batched-jitter fast port scheduling) and once on
the PR-1 legacy path, and requires *byte-identical* traces and monitor
outputs -- timing-independent, exact float equality via ``float.hex``.
"""

from repro.experiments.fig11_onoff import run_one
from repro.net.monitor import LinkMonitor
from repro.scenarios.builders import build_mixed_dumbbell
from repro.sim.trace import Tracer


def _trace_signature(tracer):
    """Exact, allocation-order-independent byte signature of a trace."""
    return [
        (
            rec.time.hex(),
            rec.category,
            rec.source,
            repr(rec.value),
            repr(sorted(rec.meta.items())) if rec.meta else "",
        )
        for rec in tracer
    ]


def _run_dumbbell(fast):
    tracer = Tracer(columnar=fast)
    result = build_mixed_dumbbell(
        n_tfrc=4, n_tcp=4, bandwidth_bps=15e6, queue_type="red", seed=3,
        endpoint_fastpath=fast, tracer=tracer, sample_queue=True,
    )
    rev_monitor = LinkMonitor(
        result.sim, result.dumbbell.reverse_link, sample_queue=True,
        columnar=fast,
    )
    result.sim.run(until=8.0)
    link = result.dumbbell.forward_link
    return {
        "trace": _trace_signature(tracer),
        "queue_samples": result.link_monitor.queue_samples,
        "rev_queue_samples": rev_monitor.queue_samples,
        "drops": result.link_monitor.drops,
        "arrivals": {
            fid: result.flow_monitor.arrivals[fid]
            for fid in result.flow_monitor.flows()
        },
        "bytes": dict(result.flow_monitor.bytes_by_flow),
        "packets": dict(result.flow_monitor.packets_by_flow),
        "rate_histories": [
            flow.sender.rate_history for flow in result.tfrc_flows
        ],
        "link": (
            link.packets_forwarded,
            link.bytes_forwarded,
            link.queue.dropped,
            link.utilization_seconds.hex(),
        ),
        "tcp": [
            (f.sender.packets_sent, f.sender.retransmissions,
             f.sender.timeouts, f.sender.acks_received)
            for f in result.tcp_flows
        ],
    }


class TestEndpointFastpathIdentity:
    def test_dumbbell_traces_byte_identical(self):
        fast = _run_dumbbell(True)
        legacy = _run_dumbbell(False)
        assert fast["trace"], "scenario produced no trace records"
        for key in fast:
            assert fast[key] == legacy[key], f"{key} diverged"

    def test_onoff_run_byte_identical(self):
        results = {}
        for fast in (True, False):
            tracer = Tracer(columnar=fast)
            run = run_one(
                n_sources=10, duration=8.0, warmup=2.0,
                timescales=(0.5, 1.0), seed=1,
                endpoint_fastpath=fast, tracer=tracer,
            )
            results[fast] = (run, _trace_signature(tracer))
        assert results[True][1], "scenario produced no trace records"
        assert results[True][1] == results[False][1]
        # OnOffRunResult is a dataclass: field-wise (exact float) equality.
        assert results[True][0] == results[False][0]
