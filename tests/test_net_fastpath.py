"""The network-layer fast path must be a pure bookkeeping optimization.

PR-4 counterpart of ``tests/test_endpoint_fastpath.py``: the batched link
wake chain, the fused RED enqueue and the incremental TCP-sink SACK state
(``net_fastpath=True``) must produce *byte-identical* results to the
per-event legacy network layer, asserted on the dumbbell (RED, with and
without ECN) and Figure-14 RED scenarios, plus direct property/fuzz tests
of each component pair.
"""

import numpy as np
import pytest

from repro.experiments.fig14_queue_dynamics import run_one as fig14_run_one
from repro.net.link import Link
from repro.net.packet import Packet, PacketType
from repro.net.queues import DropTailQueue, REDQueue
from repro.scenarios.builders import build_mixed_dumbbell
from repro.sim.engine import Simulator
from repro.sim.trace import Tracer
from repro.tcp.sink import TCPSink


def _trace_signature(tracer):
    """Exact, allocation-order-independent byte signature of a trace."""
    return [
        (
            rec.time.hex(),
            rec.category,
            rec.source,
            repr(rec.value),
            repr(sorted(rec.meta.items())) if rec.meta else "",
        )
        for rec in tracer
    ]


def _run_dumbbell(net_fast, ecn=False):
    tracer = Tracer()
    result = build_mixed_dumbbell(
        n_tfrc=4, n_tcp=4, bandwidth_bps=15e6, queue_type="red", seed=3,
        net_fastpath=net_fast, tracer=tracer, sample_queue=True, ecn=ecn,
    )
    result.sim.run(until=8.0)
    link = result.dumbbell.forward_link
    queue = link.queue
    return {
        "trace": _trace_signature(tracer),
        "queue_samples": result.link_monitor.queue_samples,
        "drops": result.link_monitor.drops,
        "bytes": dict(result.flow_monitor.bytes_by_flow),
        "packets": dict(result.flow_monitor.packets_by_flow),
        "rate_histories": [
            flow.sender.rate_history for flow in result.tfrc_flows
        ],
        "red": (
            queue.avg.hex(), queue.early_drops, queue.forced_drops,
            queue.ecn_marks, queue.enqueued, queue.dequeued, queue.dropped,
        ),
        "link": (
            link.packets_forwarded,
            link.bytes_forwarded,
            link.utilization_seconds.hex(),
        ),
        "tcp": [
            (f.sender.packets_sent, f.sender.retransmissions,
             f.sender.timeouts, f.sender.acks_received)
            for f in result.tcp_flows
        ],
    }


class TestNetFastpathIdentity:
    def test_dumbbell_red_traces_byte_identical(self):
        fast = _run_dumbbell(True)
        legacy = _run_dumbbell(False)
        assert fast["trace"], "scenario produced no trace records"
        assert fast["red"][1] + fast["red"][2] > 0, "RED never dropped"
        for key in fast:
            assert fast[key] == legacy[key], f"{key} diverged"

    def test_dumbbell_red_ecn_traces_byte_identical(self):
        fast = _run_dumbbell(True, ecn=True)
        legacy = _run_dumbbell(False, ecn=True)
        assert fast["red"][3] > 0, "scenario produced no ECN marks"
        for key in fast:
            assert fast[key] == legacy[key], f"{key} diverged"

    @pytest.mark.slow
    def test_fig14_red_byte_identical(self):
        results = {}
        for net_fast in (True, False):
            results[net_fast] = fig14_run_one(
                "tcp", n_flows=12, duration=12.0, queue_type="red",
                buffer_packets=60, seed=2, net_fastpath=net_fast,
            )
        fast, legacy = results[True], results[False]
        assert fast.queue_series, "scenario produced no queue samples"
        # QueueDynamicsResult is a dataclass: field-wise exact equality.
        assert fast == legacy


def _feed(sink, arrivals):
    """Deliver a sequence-number stream; return the emitted ACK signatures."""
    acks = []
    sink._send_ack = lambda p: acks.append(
        (p.seq, p.payload.echo_seq, tuple(p.payload.sack_blocks))
    )
    for seq in arrivals:
        sink.receive(
            Packet(flow_id="f", seq=int(seq), size=1000, sent_at=0.0)
        )
    return acks


class TestIncrementalSackEquivalence:
    """Old vs incremental SACK paths property-tested against each other."""

    def _pair(self, max_blocks=3):
        sims = Simulator(), Simulator()
        fast = TCPSink(sims[0], "f", send_ack=lambda p: None,
                       max_sack_blocks=max_blocks, incremental_sack=True)
        legacy = TCPSink(sims[1], "f", send_ack=lambda p: None,
                         max_sack_blocks=max_blocks, incremental_sack=False)
        return fast, legacy

    @pytest.mark.parametrize("seed", range(8))
    def test_random_arrival_fuzz(self, seed):
        rng = np.random.default_rng(seed)
        n = 120
        # Shuffled delivery with duplicates: sample with replacement from a
        # sliding window, so gaps open, persist, refill, and re-duplicate.
        arrivals = []
        base = 0
        while len(arrivals) < n:
            arrivals.append(base + int(rng.integers(0, 12)))
            if rng.random() < 0.4:
                base += 1
        fast, legacy = self._pair()
        assert _feed(fast, arrivals) == _feed(legacy, arrivals)
        assert fast.next_expected == legacy.next_expected
        assert fast.duplicate_data == legacy.duplicate_data

    @pytest.mark.parametrize("max_blocks", [1, 2, 3, 5])
    def test_truncation_equivalence(self, max_blocks):
        # Descending arrivals create one block per seq, newest-last in
        # sequence space: exercises the recency sort + truncation.
        arrivals = [0, 14, 10, 6, 2, 12, 4, 8, 3]
        fast, legacy = self._pair(max_blocks=max_blocks)
        fast_acks = _feed(fast, arrivals)
        legacy_acks = _feed(legacy, arrivals)
        assert fast_acks == legacy_acks
        assert all(len(blocks) <= max_blocks for _, _, blocks in fast_acks)

    def test_gap_fill_consumes_first_interval(self):
        fast, legacy = self._pair()
        arrivals = [0, 2, 3, 5, 1, 4, 6]
        assert _feed(fast, arrivals) == _feed(legacy, arrivals)
        assert fast.next_expected == 7
        assert fast._blk_starts == [] and fast._blk_ends == []

    def test_duplicate_of_held_data_refreshes_block_recency(self):
        fast, legacy = self._pair()
        arrivals = [0, 2, 6, 2]  # duplicate of held (2,3): must lead again
        fast_acks = _feed(fast, arrivals)
        assert fast_acks == _feed(legacy, arrivals)
        assert fast_acks[-1][2] == ((2, 3), (6, 7))


def _red_pair(**kwargs):
    queues = []
    for fast in (True, False):
        queues.append(
            REDQueue(
                kwargs.get("capacity", 30),
                min_thresh=kwargs.get("min_thresh", 3),
                max_thresh=kwargs.get("max_thresh", 9),
                max_p=kwargs.get("max_p", 0.1),
                weight=kwargs.get("weight", 0.2),
                gentle=kwargs.get("gentle", True),
                ecn=kwargs.get("ecn", False),
                rng=np.random.default_rng(kwargs.get("seed", 0)),
                fastpath=fast,
            )
        )
    return queues


def _packet(i, ecn_capable=False):
    return Packet(flow_id="f", seq=i, size=1000, ecn_capable=ecn_capable)


class TestRedFastpathEquivalence:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("ecn", [False, True])
    def test_decision_stream_identical(self, seed, ecn):
        fast, legacy = _red_pair(seed=seed, ecn=ecn)
        drive = np.random.default_rng(1000 + seed)
        now = 0.0
        decisions = {id(fast): [], id(legacy): []}
        for i in range(600):
            now += float(drive.uniform(0.0, 0.01))
            action = drive.random()
            for q in (fast, legacy):
                if action < 0.7:
                    pkt = _packet(i, ecn_capable=ecn)
                    decisions[id(q)].append(
                        (q.enqueue(pkt, now), pkt.ecn_marked)
                    )
                else:
                    q.dequeue(now)
        assert decisions[id(fast)] == decisions[id(legacy)]
        assert fast.avg.hex() == legacy.avg.hex()
        for name in ("early_drops", "forced_drops", "ecn_marks",
                     "enqueued", "dequeued", "dropped"):
            assert getattr(fast, name) == getattr(legacy, name), name

    def test_idle_decay_identical_across_long_gaps(self):
        # Long idle gaps stress the exp/log decay against the legacy power.
        fast, legacy = _red_pair(seed=9)
        for q in (fast, legacy):
            q.set_service_rate(1e6)
        now = 0.0
        for i in range(40):
            # Bursts fill the queue; the gap empties it so the next arrival
            # decays from a genuinely idle period.
            for j in range(6):
                for q in (fast, legacy):
                    q.enqueue(_packet(i * 10 + j), now)
            for q in (fast, legacy):
                while q.dequeue(now) is not None:
                    pass
            now += 1.0 + i * 0.37
        assert fast.avg.hex() == legacy.avg.hex()

    @pytest.mark.parametrize("fastpath", [True, False])
    def test_conservation_counters(self, fastpath):
        rng = np.random.default_rng(5)
        queue = REDQueue(
            12, min_thresh=2, max_thresh=6, weight=0.5, ecn=True,
            rng=np.random.default_rng(2), fastpath=fastpath,
        )
        accepted = dropped = marked = 0
        now = 0.0
        for i in range(500):
            now += float(rng.uniform(0.0, 0.005))
            pkt = _packet(i, ecn_capable=bool(rng.random() < 0.5))
            if queue.enqueue(pkt, now):
                accepted += 1
                marked += int(pkt.ecn_marked)
            else:
                dropped += 1
            if rng.random() < 0.3:
                queue.dequeue(now)
        # Every enqueue outcome is accounted for by exactly one counter.
        assert queue.enqueued == accepted
        assert queue.dropped == dropped
        assert queue.early_drops + queue.forced_drops == dropped
        assert queue.ecn_marks == marked
        assert queue.enqueued == queue.dequeued + len(queue)

    @pytest.mark.parametrize("fastpath", [True, False])
    def test_forced_drop_resets_count_to_zero(self, fastpath):
        # ns-2 RED: count <- 0 on *every* drop, forced included; only
        # avg < min_thresh parks the counter at -1.
        queue = REDQueue(
            4, min_thresh=1, max_thresh=2, weight=1.0, gentle=False,
            rng=np.random.default_rng(0), fastpath=fastpath,
        )
        for i in range(4):
            queue.enqueue(_packet(i), 0.0)
        assert queue.forced_drops > 0
        assert queue._count_since_drop == 0

    @pytest.mark.parametrize("fastpath", [True, False])
    def test_inter_drop_gaps_uniformized(self, fastpath):
        """Pin the count-based uniformization: with avg held in the marking
        region, the gap between successive early drops is bounded by about
        1/p_b packets (count drives p_a to 1), and the mean gap sits near
        1/(2 p_b) -- the uniformized distribution of the RED paper -- rather
        than the geometric distribution plain Bernoulli marking would give.
        """
        queue = REDQueue(
            10_000, min_thresh=1, max_thresh=1001, max_p=1.0, weight=1.0,
            rng=np.random.default_rng(7), fastpath=fastpath,
        )
        # weight=1 pins avg == instantaneous occupancy; hold the queue at
        # depth 101 (dequeue after every accept) so p_b == 0.1 for every
        # measured arrival.
        seq = 0
        while len(queue._queue) < 101:
            queue.enqueue(_packet(seq), 0.0)
            seq += 1
        gaps, last_drop = [], None
        for i in range(4000):
            if queue.enqueue(_packet(seq + i), 0.0):
                queue.dequeue(0.0)
                continue
            if last_drop is not None:
                gaps.append(i - last_drop)
            last_drop = i
        assert len(gaps) > 150
        p_b = 0.1
        assert max(gaps) <= int(1 / p_b) + 1  # hard uniformization bound
        mean = sum(gaps) / len(gaps)
        assert 0.3 / p_b < mean < 0.75 / p_b  # ~1/(2 p_b), not 1/p_b


class TestLinkUtilizationClipping:
    def _link(self, sim, fastpath):
        link = Link(
            sim, bandwidth_bps=8e6, propagation_delay=0.01,
            queue=DropTailQueue(10), fastpath=fastpath,
        )
        link.connect(lambda p: None)
        return link

    @pytest.mark.parametrize("fastpath", [True, False])
    def test_mid_transmission_query_is_clipped(self, fastpath):
        sim = Simulator()
        link = self._link(sim, fastpath)
        link.send(Packet(flow_id="f", seq=0, size=1000, sent_at=0.0))
        # 1000 bytes at 8 Mb/s = 1 ms on the wire; stop halfway through.
        sim.run(until=0.0005)
        assert link.utilization_seconds == pytest.approx(0.0005)
        sim.run(until=0.002)
        assert link.utilization_seconds == pytest.approx(0.001)

    @pytest.mark.parametrize("fastpath", [True, False])
    def test_idle_link_reports_zero(self, fastpath):
        sim = Simulator()
        link = self._link(sim, fastpath)
        sim.run(until=1.0)
        assert link.utilization_seconds == 0.0

    def test_dead_tx_started_at_attribute_removed(self):
        sim = Simulator()
        link = self._link(sim, True)
        assert not hasattr(link, "_tx_started_at")
