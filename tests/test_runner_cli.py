"""Tests for the experiment runner CLI."""

import pytest

from repro.experiments import runner


class TestRunnerCli:
    def test_all_known_experiments_registered(self):
        expected = {
            "fig02", "fig03", "fig05", "fig06", "fig08", "fig09", "fig11",
            "fig14", "fig15", "fig16", "fig18", "fig19", "fig20",
        }
        assert set(runner.EXPERIMENTS) == expected

    def test_invalid_experiment_rejected(self):
        with pytest.raises(SystemExit):
            runner.main(["fig99"])

    def test_fig20_quick_runs(self, capsys):
        assert runner.main(["fig20", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Figure 20" in out
        assert "Figure 21" in out

    def test_fig05_quick_runs(self, capsys):
        assert runner.main(["fig05", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "rate x1.0" in out

    def test_fig05_plot_renders_chart(self, capsys):
        assert runner.main(["fig05", "--quick", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "Fig 5: loss-event fraction" in out
        assert "y=x" in out
        # Chart frame characters present.
        assert "|" in out and "---" in out

    def test_fig20_plot_renders_chart(self, capsys):
        assert runner.main(["fig20", "--quick", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "Fig 21: response to persistent congestion" in out

    def test_executor_flag_validation(self, tmp_path):
        with pytest.raises(SystemExit):
            runner.main(["fig20", "--quick", "--executor", "queue"])
        with pytest.raises(SystemExit):
            runner.main(["fig20", "--quick", "--queue-dir", str(tmp_path)])
        with pytest.raises(SystemExit):
            runner.main(["fig20", "--quick", "--parallel", "0"])
        with pytest.raises(SystemExit):
            runner.main(["fig20", "--quick", "--executor", "ring"])

    def test_fig05_explicit_serial_executor(self, capsys):
        assert runner.main(["fig05", "--quick", "--executor", "serial"]) == 0
        assert "rate x1.0" in capsys.readouterr().out

    def test_queue_robustness_flag_validation(self, tmp_path):
        base = [
            "fig20", "--quick",
            "--executor", "queue", "--queue-dir", str(tmp_path),
        ]
        with pytest.raises(SystemExit):
            runner.main(base + ["--lease-timeout", "0"])
        with pytest.raises(SystemExit):
            runner.main(base + ["--max-attempts", "0"])
        with pytest.raises(SystemExit):
            runner.main(base + ["--on-poison", "explode"])

    def test_queue_robustness_flags_reach_the_executor(self, tmp_path, capsys):
        assert (
            runner.main([
                "fig20", "--quick",
                "--executor", "queue",
                "--queue-dir", str(tmp_path / "queue"),
                "--parallel", "1",
                "--cache", str(tmp_path / "cache"),
                "--lease-timeout", "45",
                "--max-attempts", "5",
                "--on-poison", "quarantine",
            ])
            == 0
        )
        assert "RTTs to halve" in capsys.readouterr().out

    def test_fig20_queue_executor_matches_serial(self, tmp_path, capsys):
        assert runner.main(["fig20", "--quick"]) == 0
        serial_out = capsys.readouterr().out
        assert (
            runner.main([
                "fig20", "--quick",
                "--executor", "queue",
                "--queue-dir", str(tmp_path / "queue"),
                "--parallel", "1",
                "--cache", str(tmp_path / "cache"),
            ])
            == 0
        )
        captured = capsys.readouterr()
        assert captured.out == serial_out
        assert "[sweep" in captured.err  # progress lines per finished cell
