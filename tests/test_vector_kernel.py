"""The lockstep batch kernel is bit-identical to the scalar reference.

The whole vector-executor design rests on one invariant: for any supported
grid cell, ``run_cells_vector`` returns the *exact* dict that
``run_cell_scalar`` returns -- every float bit-for-bit, including the timer
generation counters that witness lockstep timer arming.  These tests pin
that invariant on fixed heterogeneous grids, under property fuzz, and
through the thin-tail scalar handoff, plus the shared block-buffered draw
helpers (``BlockDraws`` / ``DrawLanes``) the kernel's determinism rides on.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro.sim.vector_kernel as vk
from repro.net.redmath import RedParams
from repro.sim.rng import BlockDraws, DrawLanes, RngRegistry
from repro.sim.vector_kernel import (
    GridCellParams,
    batchable,
    run_cell_scalar,
    run_cells_vector,
)

RED = RedParams(min_thresh=5.0, max_thresh=15.0, max_p=0.1, weight=0.002,
                gentle=True)


def make_cell(
    rtt=0.1,
    loss_rate=0.02,
    seed=0,
    duration=4.0,
    queue_type="red",
    **kwargs,
):
    return GridCellParams(
        rtt=rtt,
        loss_rate=loss_rate,
        seed=seed,
        duration=duration,
        bandwidth_bps=kwargs.pop("bandwidth_bps", 1.5e6),
        packet_size=kwargs.pop("packet_size", 1000),
        queue_type=queue_type,
        buffer_packets=kwargs.pop("buffer_packets", 25),
        red=RED if queue_type == "red" else None,
        **kwargs,
    )


def assert_batch_matches_scalar(cells):
    vec = run_cells_vector(cells)
    ref = [run_cell_scalar(cell) for cell in cells]
    for k, (got, want) in enumerate(zip(vec, ref)):
        assert got == want, (
            f"lane {k} (rtt={cells[k].rtt}, p={cells[k].loss_rate}, "
            f"seed={cells[k].seed}) diverged from the scalar kernel"
        )


class TestBatchEqualsScalar:
    @pytest.mark.parametrize("queue_type", ["red", "droptail"])
    def test_heterogeneous_grid(self, queue_type):
        """A mixed rtt x loss x seed grid matches cell-for-cell."""
        cells = [
            make_cell(rtt=rtt, loss_rate=p, seed=seed, duration=5.0,
                      queue_type=queue_type)
            for rtt in (0.04, 0.1, 0.22)
            for p in (0.0, 0.02, 0.08)
            for seed in (1, 2)
        ]
        assert_batch_matches_scalar(cells)

    def test_lossless_cells(self):
        """p = 0 cells (no path loss, queue-only drops) stay in lockstep."""
        cells = [make_cell(loss_rate=0.0, seed=s, duration=5.0)
                 for s in range(4)]
        assert_batch_matches_scalar(cells)

    def test_forced_tail_handoff(self, monkeypatch):
        """With the tail threshold forced to the whole batch, every lane
        finishes on the scalar handoff path -- mid-run state transplant,
        loss-history export, and draw-buffer resume must all be exact."""
        monkeypatch.setattr(vk, "TAIL_DIVISOR", 1)
        cells = [
            make_cell(rtt=rtt, loss_rate=p, seed=7, duration=4.0)
            for rtt in (0.06, 0.15)
            for p in (0.01, 0.05)
        ]
        assert_batch_matches_scalar(cells)

    def test_discounting_off(self):
        cells = [make_cell(seed=s, discounting=False, duration=4.0)
                 for s in range(3)]
        assert_batch_matches_scalar(cells)

    @given(
        rtts=st.lists(
            st.floats(min_value=0.02, max_value=0.3), min_size=2, max_size=6
        ),
        rates=st.lists(
            st.floats(min_value=0.0, max_value=0.25), min_size=1, max_size=3
        ),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        duration=st.floats(min_value=1.0, max_value=6.0),
        queue_type=st.sampled_from(["red", "droptail"]),
    )
    @settings(max_examples=20, deadline=None)
    def test_property_fuzz(self, rtts, rates, seed, duration, queue_type):
        """Random grids: the batch kernel never drifts from the reference."""
        cells = [
            make_cell(rtt=rtt, loss_rate=p, seed=seed + i, duration=duration,
                      queue_type=queue_type)
            for i, (rtt, p) in enumerate(
                (rtt, p) for rtt in rtts for p in rates
            )
        ]
        assert_batch_matches_scalar(cells)


class TestBatchability:
    def test_axes_may_vary(self):
        cells = [make_cell(rtt=0.05, loss_rate=0.1, seed=1),
                 make_cell(rtt=0.2, loss_rate=0.0, seed=9)]
        assert batchable(cells)

    @pytest.mark.parametrize(
        "override",
        [{"duration": 9.0}, {"bandwidth_bps": 3e6}, {"packet_size": 500},
         {"buffer_packets": 50}, {"queue_type": "droptail"},
         {"discounting": False}],
    )
    def test_shared_params_must_match(self, override):
        assert not batchable([make_cell(), make_cell(**override)])

    def test_empty_batch_is_not_batchable(self):
        assert not batchable([])

    @pytest.mark.parametrize(
        "override,message",
        [({"rtt": 0.0}, "rtt"), ({"loss_rate": 1.0}, "loss_rate"),
         ({"duration": -1.0}, "duration"), ({"queue_type": "codel"}, "queue"),
         ({"measure_fraction": 0.0}, "measure_fraction")],
    )
    def test_params_validated(self, override, message):
        with pytest.raises(ValueError, match=message):
            make_cell(**override)

    def test_red_params_required_for_red(self):
        with pytest.raises(ValueError, match="RedParams"):
            GridCellParams(
                rtt=0.1, loss_rate=0.0, seed=0, duration=1.0,
                bandwidth_bps=1.5e6, packet_size=1000, queue_type="red",
                buffer_packets=25, red=None,
            )


class TestBlockDraws:
    def test_matches_per_call_scalar_draws(self):
        """Block-buffered unit draws replay ``rng.random()`` bit-for-bit,
        independent of block size (the pin for the migrated RED call site)."""
        for block in (1, 3, 64):
            a, b = (np.random.Generator(np.random.PCG64(42)) for _ in range(2))
            draws = BlockDraws(a, block=block)
            assert [draws.next() for _ in range(200)] == [
                b.random() for _ in range(200)
            ]

    def test_bounded_draws_match_uniform(self):
        """``high=`` draws replay ``rng.uniform(0, high)`` bit-for-bit
        (the pin for the migrated access-jitter call site)."""
        a, b = (np.random.Generator(np.random.PCG64(7)) for _ in range(2))
        draws = BlockDraws(a, high=0.004, block=16)
        assert [draws.next() for _ in range(50)] == [
            b.uniform(0.0, 0.004) for _ in range(50)
        ]

    def test_resume_continues_donor_stream(self):
        """A resumed stream serves the outstanding buffer, then refills
        from the donor generator with no gap or repeat."""
        a, b = (np.random.Generator(np.random.PCG64(3)) for _ in range(2))
        donor = BlockDraws(a, block=8)
        head = [donor.next() for _ in range(5)]
        resumed = BlockDraws.resume(a, donor._buf, donor._i, block=8)
        tail = [resumed.next() for _ in range(20)]
        assert head + tail == [b.random() for _ in range(25)]

    def test_take_buffered_drains_without_refill(self):
        rng = np.random.Generator(np.random.PCG64(0))
        draws = BlockDraws(rng, block=4)
        draws.next()  # fill one block, consume one
        drained = []
        while (value := draws.take_buffered()) is not None:
            drained.append(value)
        assert len(drained) == 3
        assert draws.take_buffered() is None

    def test_block_size_validated(self):
        rng = np.random.Generator(np.random.PCG64(0))
        with pytest.raises(ValueError):
            BlockDraws(rng, block=0)


class TestDrawLanes:
    def _rngs(self, n, base=100):
        return [np.random.Generator(np.random.PCG64(base + k))
                for k in range(n)]

    def test_lane_streams_match_scalar_blockdraws(self):
        """Each lane's consumed sequence equals the scalar stream from the
        same generator, under an adversarial selection pattern."""
        n = 5
        lanes = DrawLanes(self._rngs(n), block=4)
        scalar = [BlockDraws(rng, block=4) for rng in self._rngs(n)]
        pattern_rng = np.random.Generator(np.random.PCG64(1))
        for _ in range(300):
            need = pattern_rng.random(n) < 0.6
            got = lanes.take(need)
            for k in np.nonzero(need)[0]:
                assert got[k] == scalar[k].next()

    def test_empty_take_is_read_only_and_advances_nothing(self):
        lanes = DrawLanes(self._rngs(3), block=4)
        out = lanes.take(np.zeros(3, dtype=bool))
        with pytest.raises(ValueError):
            out[0] = 0.5
        got = lanes.take(np.ones(3, dtype=bool))
        want = [BlockDraws(rng, block=4).next() for rng in self._rngs(3)]
        assert list(got) == want

    def test_export_lane_resumes_exactly(self):
        """Detaching a lane mid-block yields its remaining stream exactly
        (the mechanism behind the batch kernel's scalar tail handoff)."""
        n = 3
        lanes = DrawLanes(self._rngs(n), block=8)
        for _ in range(5):
            lanes.take(np.ones(n, dtype=bool))
        exported = lanes.export_lane(1)
        reference = BlockDraws(self._rngs(n)[1], block=8)
        for _ in range(5):
            reference.next()
        assert [exported.next() for _ in range(30)] == [
            reference.next() for _ in range(30)
        ]
